// Observability subsystem: trace ring, histograms, slot budgets, the
// serial-vs-parallel trace equivalence guarantee, exporters, and the
// telemetry interning satellites.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/thread_flags.h"
#include "core/mgmt.h"
#include "obs/export.h"
#include "obs/histogram.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "sim/deployment.h"

namespace rb {
namespace {

// ----------------------------------------------------------------------
// TraceRing
// ----------------------------------------------------------------------

obs::TraceEvent ev(std::int64_t ts, std::uint16_t name = 0) {
  obs::TraceEvent e;
  e.ts_ns = ts;
  e.name = name;
  return e;
}

TEST(TraceRing, FifoDrainAndOverflowDropCounting) {
  obs::TraceRing ring(8);
  EXPECT_EQ(ring.capacity(), 8u);

  for (int i = 0; i < 8; ++i) ring.push(ev(i));
  ring.push(ev(99));  // full: dropped + counted, never blocks or overwrites
  ring.push(ev(100));
  EXPECT_EQ(ring.dropped(), 2u);

  std::vector<obs::TraceEvent> out;
  ring.drain(out);
  ASSERT_EQ(out.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[std::size_t(i)].ts_ns, i);

  // Space reclaimed after the drain; wrap the indices well past capacity.
  for (int i = 0; i < 200; ++i) ring.push(ev(1000 + i));
  out.clear();
  ring.drain(out);
  ASSERT_EQ(out.size(), 8u);  // first 8 kept, the rest dropped
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[std::size_t(i)].ts_ns, 1000 + i);
  EXPECT_EQ(ring.dropped(), 2u + 192u);

  // Drain-after-drain sees nothing.
  out.clear();
  ring.drain(out);
  EXPECT_TRUE(out.empty());
}

TEST(TraceRing, EventLessIsADeterministicTotalOrder) {
  obs::TraceEvent a = ev(10), b = ev(10);
  b.name = 1;
  EXPECT_TRUE(obs::event_less(a, b));
  EXPECT_FALSE(obs::event_less(b, a));
  EXPECT_FALSE(obs::event_less(a, a));  // irreflexive
  // Virtual time dominates every structural tie-break.
  obs::TraceEvent c = ev(9, 5);
  c.track = 7;
  EXPECT_TRUE(obs::event_less(c, a));
}

// ----------------------------------------------------------------------
// Log-linear histogram
// ----------------------------------------------------------------------

TEST(LatencyHistogram, BucketBoundsContainTheirValues) {
  using H = obs::LatencyHistogram;
  for (std::int64_t v : {0LL, 1LL, 31LL, 32LL, 33LL, 100LL, 1000LL,
                         123456LL, 1'000'000'000LL}) {
    const int idx = H::index_of(std::uint64_t(v));
    EXPECT_GE(v, H::lower_bound(idx)) << v;
    EXPECT_LE(v, H::upper_bound(idx)) << v;
  }
  // Relative-error bound: bucket width <= lower_bound / 16 everywhere.
  for (std::int64_t v = 32; v < 100'000'000; v = v * 3 + 7) {
    const int idx = H::index_of(std::uint64_t(v));
    const std::int64_t width = H::upper_bound(idx) - H::lower_bound(idx) + 1;
    EXPECT_LE(width * 16, H::lower_bound(idx)) << v;
  }
}

TEST(LatencyHistogram, MergedShardsEqualSingleStream) {
  // Deterministic splitmix-style stream sharded four ways.
  obs::LatencyHistogram all;
  obs::LatencyHistogram shard[4];
  std::uint64_t s = 12345;
  for (int i = 0; i < 50'000; ++i) {
    std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    const std::int64_t v = std::int64_t(z % 2'000'000);  // 0..2ms
    all.record(v);
    shard[i % 4].record(v);
  }
  obs::LatencyHistogram merged;
  for (const auto& h : shard) merged.merge(h);
  EXPECT_EQ(merged, all);  // identical state, not just close
  EXPECT_EQ(merged.count(), 50'000u);
  EXPECT_EQ(merged.sum(), all.sum());
  EXPECT_EQ(merged.min(), all.min());
  EXPECT_EQ(merged.max(), all.max());
  EXPECT_EQ(merged.percentile(50), all.percentile(50));
  EXPECT_EQ(merged.percentile(99), all.percentile(99));
}

TEST(LatencyHistogram, PercentilesAreMonotoneAndBracketed) {
  obs::LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(i);
  EXPECT_EQ(h.count(), 1000u);
  std::int64_t prev = 0;
  for (double p : {1.0, 10.0, 50.0, 90.0, 99.0, 100.0}) {
    const std::int64_t v = h.percentile(p);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_LE(h.percentile(100), h.max());
  // ~3% relative error at the median of a uniform 1..1000 stream.
  EXPECT_NEAR(double(h.percentile(50)), 500.0, 500.0 * 0.04);
  h.record(-5);  // negatives clamp to zero rather than corrupting state
  EXPECT_EQ(h.min(), 0);
}

// ----------------------------------------------------------------------
// Minimal recursive-descent JSON validator — enough to prove the
// Chrome-trace exporter emits well-formed JSON.
// ----------------------------------------------------------------------

struct JsonCheck {
  const char* p;
  const char* end;

  void ws() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
  }
  bool lit(const char* s) {
    const std::size_t n = std::strlen(s);
    if (std::size_t(end - p) < n || std::strncmp(p, s, n) != 0) return false;
    p += n;
    return true;
  }
  bool string() {
    if (p >= end || *p != '"') return false;
    ++p;
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return false;
      }
      ++p;
    }
    if (p >= end) return false;
    ++p;
    return true;
  }
  bool number() {
    const char* q = p;
    if (p < end && *p == '-') ++p;
    while (p < end && (std::isdigit(static_cast<unsigned char>(*p)) ||
                       *p == '.' || *p == 'e' || *p == 'E' || *p == '-' ||
                       *p == '+'))
      ++p;
    return p > q;
  }
  bool value() {
    ws();
    if (p >= end) return false;
    if (*p == '{') return object();
    if (*p == '[') return array();
    if (*p == '"') return string();
    if (lit("true") || lit("false") || lit("null")) return true;
    return number();
  }
  bool object() {
    ++p;  // '{'
    ws();
    if (p < end && *p == '}') {
      ++p;
      return true;
    }
    while (true) {
      ws();
      if (!string()) return false;
      ws();
      if (p >= end || *p != ':') return false;
      ++p;
      if (!value()) return false;
      ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      break;
    }
    if (p >= end || *p != '}') return false;
    ++p;
    return true;
  }
  bool array() {
    ++p;  // '['
    ws();
    if (p < end && *p == ']') {
      ++p;
      return true;
    }
    while (true) {
      if (!value()) return false;
      ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      break;
    }
    if (p >= end || *p != ']') return false;
    ++p;
    return true;
  }
};

bool valid_json(const std::string& s) {
  JsonCheck j{s.data(), s.data() + s.size()};
  if (!j.value()) return false;
  j.ws();
  return j.p == j.end;
}

TEST(JsonCheckSelfTest, AcceptsGoodRejectsBad) {
  EXPECT_TRUE(valid_json(R"({"a":[1,2.5,"x\"y",true,null],"b":{}})"));
  EXPECT_FALSE(valid_json(R"({"a":1)"));
  EXPECT_FALSE(valid_json(R"([1,2,])"));
  EXPECT_FALSE(valid_json(R"({"a" 1})"));
  EXPECT_FALSE(valid_json("{} trailing"));
}

// ----------------------------------------------------------------------
// End-to-end: the DAS floor scenario traced under obs
// ----------------------------------------------------------------------

struct ObsRun {
  std::vector<obs::SlotBudget> budgets;
  std::map<std::uint32_t, obs::LatencyHistogram> hists;
  std::vector<obs::TraceEvent> events;
  std::uint64_t dropped = 0;
};

/// The exec-determinism scenario (one 100 MHz cell over five DAS RUs plus
/// an independent direct-wired second cell), run with collection on;
/// optionally a delayed + lossy fronthaul link to RU 0.
ObsRun run_traced(const exec::ExecPolicy& policy, int slots,
                  bool with_fault = false) {
  auto& col = obs::Collector::instance();
  Deployment d;
  CellConfig c;
  c.bandwidth = MHz(100);
  c.max_layers = 4;
  c.pci = 1;
  auto du = d.add_du(c, srsran_profile(), 0);
  std::vector<Deployment::RuHandle> rus;
  std::vector<Deployment::RuHandle*> ptrs;
  for (int f = 0; f < 5; ++f) {
    RuSite site;
    site.pos = d.plan.ru_position(f, 1);
    site.n_antennas = 4;
    site.bandwidth = MHz(100);
    site.center_freq = c.center_freq;
    rus.push_back(d.add_ru(site, std::uint8_t(f), du.du->fh()));
  }
  for (auto& r : rus) ptrs.push_back(&r);
  d.add_das(du, ptrs, DriverKind::Dpdk, 2);

  CellConfig c2;
  c2.bandwidth = MHz(100);
  c2.max_layers = 4;
  c2.pci = 2;
  c2.center_freq = c.center_freq + MHz(120);
  auto du2 = d.add_du(c2, srsran_profile(), 1);
  RuSite s2;
  s2.pos = d.plan.ru_position(0, 3);
  s2.n_antennas = 4;
  s2.bandwidth = MHz(100);
  s2.center_freq = c2.center_freq;
  auto ru2 = d.add_ru(s2, 5, du2.du->fh());
  d.connect_direct(du2, ru2);

  if (with_fault) {
    FaultPlan plan;
    plan.delay_ns = 4000;
    plan.jitter_ns = 2000;
    plan.loss = 0.02;
    plan.seed = 7;
    d.add_fault(*rus[0].port, plan, plan, "obslink");
  }

  for (int f = 0; f < 5; ++f)
    d.add_ue(d.plan.near_ru(f, 1, 4.0), &du, 200.0, 20.0);
  d.add_ue(d.plan.near_ru(0, 3, 4.0), &du2, 200.0, 20.0, 2);

  d.engine.set_exec_policy(policy);
  col.start();  // fresh dataset per run; interned ids persist
  d.engine.run_slots(slots);
  col.stop();

  ObsRun r;
  r.budgets = col.budgets();
  r.hists = col.hists();
  r.events = col.events();
  r.dropped = col.dropped();
  return r;
}

TEST(ObsE2E, SerialAndParallelProduceIdenticalTracesAndBudgets) {
  constexpr int kSlots = 60;
  const ObsRun serial = run_traced(exec::ExecPolicy::serial(), kSlots);
  const ObsRun par4 = run_traced(exec::ExecPolicy::parallel(4), kSlots);

  ASSERT_EQ(serial.budgets.size(), std::size_t(kSlots));
  ASSERT_EQ(par4.budgets.size(), std::size_t(kSlots));
  EXPECT_EQ(serial.dropped, 0u);
  EXPECT_EQ(par4.dropped, 0u);

  // Per-slot budgets must match slot for slot...
  for (int s = 0; s < kSlots; ++s) {
    SCOPED_TRACE(s);
    EXPECT_EQ(serial.budgets[std::size_t(s)], par4.budgets[std::size_t(s)]);
  }
  // ...as must the merged histograms and the full retained event stream.
  EXPECT_EQ(serial.hists, par4.hists);
  ASSERT_EQ(serial.events.size(), par4.events.size());
  EXPECT_TRUE(std::equal(serial.events.begin(), serial.events.end(),
                         par4.events.begin()));

  // And the run actually exercised the stack: handler time was recorded.
  std::uint64_t busy = 0;
  for (const auto& b : serial.budgets) busy += b.busy_ns;
  EXPECT_GT(busy, 0u);
}

TEST(ObsE2E, BudgetAttributionIsConsistent) {
  const ObsRun r = run_traced(exec::ExecPolicy::serial(), 40);
  const auto& col = obs::Collector::instance();
  bool saw_actions = false;
  for (const auto& b : r.budgets) {
    // Every action span lies inside a Packet span (handler) or a Combine
    // span (pump-idle flush), so attributed action time cannot exceed
    // busy + combine. The +events slack covers per-span truncation.
    EXPECT_LE(b.a1_ns + b.a2_ns + b.a3_ns + b.a4_ns + b.charge_ns,
              b.busy_ns + b.combine_ns + b.events);
    if (b.a1_ns > 0 || b.a4_ns > 0) saw_actions = true;
    if (b.deadline_ns > 0) {
      EXPECT_DOUBLE_EQ(b.budget_pct(),
                       100.0 * double(b.busy_ns) / double(b.deadline_ns));
    }
  }
  EXPECT_TRUE(saw_actions);
  // The 30 kHz numerology deadline is 500 us.
  EXPECT_EQ(r.budgets.front().deadline_ns, 500'000);
  EXPECT_EQ(col.slots_committed(), 40u);
  // A handler-latency histogram accrued on the DAS track.
  bool saw_mb_proc = false;
  for (const auto& [key, h] : r.hists) {
    if (obs::Collector::hist_key_kind(key) == obs::HistKind::MbProc &&
        h.count() > 0)
      saw_mb_proc = true;
  }
  EXPECT_TRUE(saw_mb_proc);
}

TEST(ObsE2E, RetainedEventsAreSortedPerSlotBatch) {
  const ObsRun r = run_traced(exec::ExecPolicy::parallel(2), 30);
  ASSERT_FALSE(r.budgets.empty());
  std::uint64_t checked = 0;
  for (const auto& b : r.budgets) {
    ASSERT_LE(b.ev_end, r.events.size());
    ASSERT_LE(b.ev_begin, b.ev_end);
    for (std::uint64_t i = b.ev_begin + 1; i < b.ev_end; ++i) {
      ASSERT_FALSE(obs::event_less(r.events[std::size_t(i)],
                                   r.events[std::size_t(i - 1)]))
          << "slot " << b.slot << " event " << i;
      ++checked;
    }
  }
  EXPECT_GT(checked, 1000u);  // the scenario produces a real trace
}

TEST(ObsE2E, ChromeTraceExportIsValidAndAnnotated) {
  run_traced(exec::ExecPolicy::serial(), 100, /*with_fault=*/true);
  auto& col = obs::Collector::instance();

  const std::string json = obs::chrome_trace_json(col);
  ASSERT_TRUE(valid_json(json)) << json.substr(0, 400);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  // Slot spans on the engine track, middlebox actions, link-delay spans,
  // the app-declared DAS combine phase, and fault annotations.
  EXPECT_NE(json.find("\"name\":\"slot\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"a1.forward\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"a4.merge\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"link\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"das.combine\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fault.delay\""), std::string::npos);
  EXPECT_NE(json.find("obslink.ab"), std::string::npos);  // track name
  EXPECT_NE(json.find("mb.das0"), std::string::npos);

  // Fault-delay histogram sits exactly in the configured 4..6 us band.
  bool found_fault_hist = false;
  for (const auto& [key, h] : col.hists()) {
    if (obs::Collector::hist_key_kind(key) != obs::HistKind::FaultDelay)
      continue;
    found_fault_hist = true;
    EXPECT_GT(h.count(), 0u);
    EXPECT_GE(h.min(), 4000);
    EXPECT_LT(h.max(), 6000);
  }
  EXPECT_TRUE(found_fault_hist);

  const std::string prom = obs::prometheus_text(col);
  EXPECT_NE(prom.find("rb_obs_slots_total 100"), std::string::npos);
  EXPECT_NE(prom.find("rb_obs_mb_proc_ns_bucket"), std::string::npos);
  EXPECT_NE(prom.find("rb_obs_link_delay_ns_bucket"), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);

  const std::string csv = obs::budget_csv(col);
  // Header + one row per slot.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 101);
  EXPECT_NE(csv.find("slot,t0_ns,deadline_ns,busy_ns"), std::string::npos);
}

TEST(ObsE2E, DisabledCollectorRecordsNothing) {
  auto& col = obs::Collector::instance();
  col.reset();
  Deployment d;
  CellConfig c;
  c.bandwidth = MHz(40);
  auto du = d.add_du(c, srsran_profile(), 0);
  RuSite site;
  site.pos = d.plan.ru_position(0, 1);
  site.bandwidth = MHz(40);
  site.center_freq = c.center_freq;
  auto ru = d.add_ru(site, 0, du.du->fh());
  d.connect_direct(du, ru);
  d.add_ue(d.plan.near_ru(0, 1, 4.0), &du, 50.0, 10.0);
  d.engine.run_slots(20);
  EXPECT_EQ(col.slots_committed(), 0u);
  EXPECT_TRUE(col.events().empty());
  EXPECT_TRUE(col.budgets().empty());
  EXPECT_TRUE(col.hists().empty());
}

// ----------------------------------------------------------------------
// mgmt query plane
// ----------------------------------------------------------------------

struct NullApp final : MiddleboxApp {
  std::string name() const override { return "nullapp"; }
  void on_frame(int, PacketPtr p, FhFrame&, MbContext& ctx) override {
    ctx.drop(std::move(p));
  }
};

TEST(ObsMgmt, ExportersReachableThroughMgmtVerbs) {
  run_traced(exec::ExecPolicy::serial(), 20);

  NullApp app;
  MiddleboxRuntime rt(MiddleboxRuntime::Config{}, app);
  MgmtEndpoint ep(rt);

  const std::string trace = ep.handle("obs trace");
  EXPECT_TRUE(valid_json(trace));
  EXPECT_NE(trace.find("\"name\":\"slot\""), std::string::npos);

  EXPECT_NE(ep.handle("obs prom").find("rb_obs_slots_total"),
            std::string::npos);
  EXPECT_NE(ep.handle("obs csv").find("deadline_miss"), std::string::npos);
  EXPECT_NE(ep.handle("obs stats").find("slots=20"), std::string::npos);
  EXPECT_EQ(ep.handle("obs start"), "ok");
  EXPECT_TRUE(obs::enabled());
  EXPECT_EQ(ep.handle("obs stop"), "ok");
  EXPECT_FALSE(obs::enabled());
  // Unknown subverbs answer with usage, not app delegation.
  EXPECT_NE(ep.handle("obs bogus").find("unknown obs"), std::string::npos);
  obs::Collector::instance().reset();
}

// ----------------------------------------------------------------------
// Telemetry satellites: gauge interning and inc/counter symmetry
// ----------------------------------------------------------------------

TEST(TelemetryGauges, InternedAndStringApisShareOneStore) {
  Telemetry t;
  const auto id = t.intern_gauge("util");
  EXPECT_EQ(id, t.intern_gauge("util"));  // idempotent
  t.set_gauge(id, 0.25);
  EXPECT_DOUBLE_EQ(t.gauge(id), 0.25);
  EXPECT_DOUBLE_EQ(t.gauge("util"), 0.25);
  t.set_gauge("util", 0.75);  // string path hits the same slot
  EXPECT_DOUBLE_EQ(t.gauge(id), 0.75);
  EXPECT_DOUBLE_EQ(t.gauge("absent"), 0.0);  // lookup must not intern junk

  const auto snap = t.gauges();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.at("util"), 0.75);
}

TEST(TelemetryGauges, GaugesAndCountersAreIndependentNamespaces) {
  Telemetry t;
  const auto cid = t.intern("x");
  const auto gid = t.intern_gauge("x");
  t.inc(cid, 3);
  t.set_gauge(gid, 1.5);
  EXPECT_EQ(t.counter("x"), 3u);
  EXPECT_DOUBLE_EQ(t.gauge("x"), 1.5);
}

TEST(TelemetrySymmetry, OutOfRangeIdsAreCheckedOnBothPaths) {
  Telemetry t;
  const auto id = t.intern("only");
  t.inc(id);
  const Telemetry::CounterId bogus = 999;
  const Telemetry::GaugeId bogus_g = 999;
#ifdef NDEBUG
  // Release: both directions are checked no-ops — inc() must not write
  // out of bounds (it used to be unchecked while counter() was checked).
  t.inc(bogus, 7);
  EXPECT_EQ(t.counter(bogus), 0u);
  t.set_gauge(bogus_g, 3.0);
  EXPECT_DOUBLE_EQ(t.gauge(bogus_g), 0.0);
  EXPECT_EQ(t.counter(id), 1u);  // valid state untouched
  ASSERT_EQ(t.counters().size(), 1u);
#else
  // Debug: both directions assert, symmetrically.
  EXPECT_DEATH(t.inc(bogus, 7), "CounterId");
  EXPECT_DEATH((void)t.counter(bogus), "CounterId");
  EXPECT_DEATH(t.set_gauge(bogus_g, 3.0), "GaugeId");
  EXPECT_DEATH((void)t.gauge(bogus_g), "GaugeId");
#endif
}

TEST(TelemetryThreading, PublishOffWorkerThreadIsAllowed) {
  // The coordinator (this thread) may publish/subscribe freely; the
  // worker-thread assert is exercised implicitly by the parallel e2e
  // runs above (apps publish from on_slot at the barrier, never from
  // pool workers).
  Telemetry t;
  int got = 0;
  t.subscribe([&](const TelemetrySample&) { ++got; });
  t.publish({0, "k", 1.0});
  EXPECT_EQ(got, 1);
  EXPECT_FALSE(on_exec_worker_thread());
}

}  // namespace
}  // namespace rb
