// Unit + property tests for the Block Floating Point codec and the PRB
// payload kernels (the A4 primitives).
#include <gtest/gtest.h>

#include <random>

#include "iq/prb.h"

namespace rb {
namespace {

std::vector<IqSample> random_samples(int n_prb, std::uint32_t seed,
                                     std::int16_t amp = 20000) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(-amp, amp);
  std::vector<IqSample> v(std::size_t(n_prb) * kScPerPrb);
  for (auto& s : v) {
    s.i = std::int16_t(dist(rng));
    s.q = std::int16_t(dist(rng));
  }
  return v;
}

TEST(BfpExponent, ZeroForSmallSamples) {
  PrbSamples prb{};
  for (auto& s : prb) s = {100, -100};
  EXPECT_EQ(bfp_exponent(IqConstSpan(prb.data(), prb.size()), 9), 0);
}

TEST(BfpExponent, GrowsWithAmplitude) {
  PrbSamples prb{};
  std::uint8_t last = 0;
  for (std::int16_t amp : {200, 800, 3200, 12800, 32000}) {
    for (auto& s : prb) s = {amp, std::int16_t(-amp)};
    const std::uint8_t e = bfp_exponent(IqConstSpan(prb.data(), prb.size()), 9);
    EXPECT_GE(e, last);
    last = e;
  }
  EXPECT_GE(last, 6);
}

TEST(BfpExponent, FullScaleFitsWidth) {
  PrbSamples prb{};
  for (auto& s : prb) s = {32767, -32768};
  for (int w = 2; w <= 16; ++w) {
    const std::uint8_t e = bfp_exponent(IqConstSpan(prb.data(), prb.size()), w);
    // Shifting by e must land within a signed w-bit mantissa.
    EXPECT_LE(32767 >> e, (1 << (w - 1)) - 1) << "width " << w;
  }
}

TEST(BfpCompress, ZeroPrbIsAllZeroBytes) {
  PrbSamples prb{};
  std::vector<std::uint8_t> out(64);
  auto r = bfp_compress_prb(IqConstSpan(prb.data(), prb.size()), 9, out);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->exponent, 0);
  for (std::size_t i = 0; i < r->bytes; ++i) EXPECT_EQ(out[i], 0);
}

TEST(BfpCompress, RejectsTinyBuffer) {
  PrbSamples prb{};
  std::vector<std::uint8_t> out(4);
  EXPECT_FALSE(bfp_compress_prb(IqConstSpan(prb.data(), prb.size()), 9, out));
}

TEST(BfpCompress, RejectsInvalidWidth) {
  PrbSamples prb{};
  std::vector<std::uint8_t> out(64);
  EXPECT_FALSE(bfp_compress_prb(IqConstSpan(prb.data(), prb.size()), 1, out));
  EXPECT_FALSE(bfp_compress_prb(IqConstSpan(prb.data(), prb.size()), 17, out));
}

TEST(BfpDecompress, RejectsTruncatedInput) {
  std::vector<std::uint8_t> in(10, 0);
  PrbSamples out{};
  EXPECT_FALSE(bfp_decompress_prb(in, 9, IqSpan(out.data(), out.size())));
}

/// Property: compress/decompress round trip loses at most the truncated
/// low bits: |x - round_trip(x)| < 2^exponent.
class BfpRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(BfpRoundTrip, ErrorBoundedByExponent) {
  const int width = GetParam();
  const CompConfig cfg{CompMethod::BlockFloatingPoint, width};
  auto samples = random_samples(16, std::uint32_t(width) * 31u);
  std::vector<std::uint8_t> comp(cfg.prb_bytes() * 16);
  auto wrote = compress_prbs(IqConstSpan(samples.data(), samples.size()),
                             cfg, comp);
  ASSERT_TRUE(wrote.has_value());
  EXPECT_EQ(*wrote, comp.size());
  std::vector<IqSample> out(samples.size());
  auto read = decompress_prbs(comp, 16, cfg, IqSpan(out.data(), out.size()));
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(*read, comp.size());
  for (int p = 0; p < 16; ++p) {
    const std::uint8_t e = bfp_wire_exponent(
        std::span<const std::uint8_t>(comp).subspan(std::size_t(p) *
                                                    cfg.prb_bytes()));
    const int tol = 1 << e;
    for (int k = 0; k < kScPerPrb; ++k) {
      const auto& a = samples[std::size_t(p * kScPerPrb + k)];
      const auto& b = out[std::size_t(p * kScPerPrb + k)];
      EXPECT_LT(std::abs(a.i - b.i), tol) << "w=" << width << " prb=" << p;
      EXPECT_LT(std::abs(a.q - b.q), tol);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BfpRoundTrip, ::testing::Values(2, 4, 7, 9, 12, 14, 16));

TEST(BfpRoundTrip, Width16IsLossless) {
  const CompConfig cfg{CompMethod::BlockFloatingPoint, 16};
  auto samples = random_samples(8, 5);
  std::vector<std::uint8_t> comp(cfg.prb_bytes() * 8);
  compress_prbs(IqConstSpan(samples.data(), samples.size()), cfg, comp);
  std::vector<IqSample> out(samples.size());
  decompress_prbs(comp, 8, cfg, IqSpan(out.data(), out.size()));
  EXPECT_EQ(samples, out);
}

TEST(CompNone, RoundTripsExactly) {
  const CompConfig cfg{CompMethod::None, 16};
  auto samples = random_samples(4, 6);
  std::vector<std::uint8_t> comp(cfg.prb_bytes() * 4);
  auto wrote = compress_prbs(IqConstSpan(samples.data(), samples.size()),
                             cfg, comp);
  ASSERT_TRUE(wrote.has_value());
  std::vector<IqSample> out(samples.size());
  ASSERT_TRUE(decompress_prbs(comp, 4, cfg, IqSpan(out.data(), out.size())));
  EXPECT_EQ(samples, out);
}

TEST(CompConfig, UdCompHdrRoundTrips) {
  for (int w : {2, 9, 14}) {
    CompConfig c{CompMethod::BlockFloatingPoint, w};
    EXPECT_EQ(CompConfig::from_ud_comp_hdr(c.ud_comp_hdr()), c);
  }
  // Width 16 encodes as 0 in the 4-bit field.
  CompConfig c16{CompMethod::BlockFloatingPoint, 16};
  EXPECT_EQ(CompConfig::from_ud_comp_hdr(c16.ud_comp_hdr()).iq_width, 16);
}

TEST(Accumulate, SaturatesAtInt16) {
  PrbSamples a{}, b{};
  for (auto& s : a) s = {30000, -30000};
  for (auto& s : b) s = {10000, -10000};
  accumulate(IqSpan(a.data(), a.size()), IqConstSpan(b.data(), b.size()));
  for (const auto& s : a) {
    EXPECT_EQ(s.i, 32767);
    EXPECT_EQ(s.q, -32768);
  }
}

TEST(MergeCompressed, SumsTwoStreams) {
  const CompConfig cfg{CompMethod::BlockFloatingPoint, 16};  // lossless
  auto a = random_samples(4, 7, 8000);
  auto b = random_samples(4, 8, 8000);
  std::vector<std::uint8_t> ca(cfg.prb_bytes() * 4), cb(cfg.prb_bytes() * 4);
  compress_prbs(IqConstSpan(a.data(), a.size()), cfg, ca);
  compress_prbs(IqConstSpan(b.data(), b.size()), cfg, cb);
  std::vector<std::span<const std::uint8_t>> srcs{ca, cb};
  std::vector<std::uint8_t> dst(ca.size());
  PrbScratch scratch;
  const std::size_t wrote = merge_compressed(
      std::span<const std::span<const std::uint8_t>>(srcs.data(), 2), 4, cfg,
      dst, scratch);
  ASSERT_EQ(wrote, dst.size());
  std::vector<IqSample> out(a.size());
  ASSERT_TRUE(decompress_prbs(dst, 4, cfg, IqSpan(out.data(), out.size())));
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(out[k].i, sat16(a[k].i + b[k].i));
    EXPECT_EQ(out[k].q, sat16(a[k].q + b[k].q));
  }
}

TEST(MergeCompressed, PreservesEnergyScaleAtW9) {
  // The DAS merge at the real wire width: summed power ~ sum of powers.
  const CompConfig cfg{CompMethod::BlockFloatingPoint, 9};
  auto a = random_samples(8, 9, 4000);
  auto b = random_samples(8, 10, 4000);
  std::vector<std::uint8_t> ca(cfg.prb_bytes() * 8), cb(cfg.prb_bytes() * 8);
  compress_prbs(IqConstSpan(a.data(), a.size()), cfg, ca);
  compress_prbs(IqConstSpan(b.data(), b.size()), cfg, cb);
  std::vector<std::span<const std::uint8_t>> srcs{ca, cb};
  std::vector<std::uint8_t> dst(ca.size());
  PrbScratch scratch;
  ASSERT_GT(merge_compressed(
                std::span<const std::span<const std::uint8_t>>(srcs.data(), 2),
                8, cfg, dst, scratch),
            0u);
  std::vector<IqSample> out(a.size());
  ASSERT_TRUE(decompress_prbs(dst, 8, cfg, IqSpan(out.data(), out.size())));
  // Reference: the element-wise sum of the original samples (the finite
  // sample cross-term means Pa+Pb is not the right reference).
  std::vector<IqSample> ref = a;
  accumulate(IqSpan(ref.data(), ref.size()),
             IqConstSpan(b.data(), b.size()));
  const double p_ref = mean_power(IqConstSpan(ref.data(), ref.size()));
  const double p_out = mean_power(IqConstSpan(out.data(), out.size()));
  EXPECT_NEAR(p_out, p_ref, p_ref * 0.02);  // quantization noise only
}

TEST(CopyPrbsAligned, MovesBytesVerbatim) {
  const CompConfig cfg{CompMethod::BlockFloatingPoint, 9};
  auto a = random_samples(6, 11);
  std::vector<std::uint8_t> src(cfg.prb_bytes() * 6);
  compress_prbs(IqConstSpan(a.data(), a.size()), cfg, src);
  std::vector<std::uint8_t> dst(cfg.prb_bytes() * 12, 0);
  ASSERT_TRUE(copy_prbs_aligned(src, 1, dst, 5, 4, cfg));
  EXPECT_TRUE(std::equal(src.begin() + std::ptrdiff_t(cfg.prb_bytes()),
                         src.begin() + std::ptrdiff_t(cfg.prb_bytes() * 5),
                         dst.begin() + std::ptrdiff_t(cfg.prb_bytes() * 5)));
}

TEST(CopyPrbsAligned, RejectsOutOfRange) {
  const CompConfig cfg{CompMethod::BlockFloatingPoint, 9};
  std::vector<std::uint8_t> src(cfg.prb_bytes() * 2), dst(cfg.prb_bytes() * 2);
  EXPECT_FALSE(copy_prbs_aligned(src, 1, dst, 0, 2, cfg));
  EXPECT_FALSE(copy_prbs_aligned(src, 0, dst, 1, 2, cfg));
  EXPECT_FALSE(copy_prbs_aligned(src, -1, dst, 0, 1, cfg));
}

TEST(CopyPrbsShifted, ShiftsSamplesBySubcarriers) {
  const CompConfig cfg{CompMethod::BlockFloatingPoint, 16};
  auto a = random_samples(3, 12, 8000);
  std::vector<std::uint8_t> src(cfg.prb_bytes() * 3);
  compress_prbs(IqConstSpan(a.data(), a.size()), cfg, src);
  std::vector<std::uint8_t> dst(cfg.prb_bytes() * 8, 0);
  const int shift = 5;
  PrbScratch scratch;
  ASSERT_TRUE(copy_prbs_shifted(src, 0, dst, 2, 3, shift, cfg, scratch));
  std::vector<IqSample> out(4 * kScPerPrb);
  ASSERT_TRUE(decompress_prbs(
      std::span<const std::uint8_t>(dst).subspan(cfg.prb_bytes() * 2), 4, cfg,
      IqSpan(out.data(), out.size())));
  for (std::size_t k = 0; k < a.size(); ++k)
    EXPECT_EQ(out[k + shift], a[k]) << "k=" << k;
  for (int k = 0; k < shift; ++k) EXPECT_EQ(out[std::size_t(k)], IqSample{});
}

TEST(CopyPrbsShifted, RejectsInvalidShift) {
  const CompConfig cfg{CompMethod::BlockFloatingPoint, 9};
  std::vector<std::uint8_t> src(cfg.prb_bytes() * 2), dst(cfg.prb_bytes() * 4);
  PrbScratch scratch;
  EXPECT_FALSE(copy_prbs_shifted(src, 0, dst, 0, 2, 0, cfg, scratch));
  EXPECT_FALSE(copy_prbs_shifted(src, 0, dst, 0, 2, 12, cfg, scratch));
}

TEST(ZeroPrbs, BlanksRange) {
  const CompConfig cfg{CompMethod::BlockFloatingPoint, 9};
  std::vector<std::uint8_t> dst(cfg.prb_bytes() * 4, 0xff);
  ASSERT_TRUE(zero_prbs(dst, 1, 2, cfg));
  EXPECT_EQ(dst[0], 0xff);
  for (std::size_t i = cfg.prb_bytes(); i < cfg.prb_bytes() * 3; ++i)
    EXPECT_EQ(dst[i], 0);
  EXPECT_EQ(dst[cfg.prb_bytes() * 3], 0xff);
}

}  // namespace
}  // namespace rb
