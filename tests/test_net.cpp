// Unit tests for the packet I/O substrate: pools, ports, switch, NIC/VFs,
// drivers.
#include <gtest/gtest.h>

#include "net/driver.h"
#include "net/nic.h"
#include "net/packet.h"
#include "net/switch.h"

namespace rb {
namespace {

TEST(PacketPool, AllocReleaseCycle) {
  PacketPool pool(4);
  EXPECT_EQ(pool.capacity(), 4u);
  {
    auto a = pool.alloc();
    auto b = pool.alloc();
    ASSERT_TRUE(a && b);
    EXPECT_EQ(pool.in_use(), 2u);
  }
  EXPECT_EQ(pool.in_use(), 0u);  // RAII return
}

TEST(PacketPool, ExhaustionReturnsNull) {
  PacketPool pool(2);
  auto a = pool.alloc();
  auto b = pool.alloc();
  auto c = pool.alloc();
  EXPECT_TRUE(a && b);
  EXPECT_FALSE(c);
  EXPECT_EQ(pool.alloc_failures(), 1u);
}

TEST(PacketPool, CloneCopiesDataAndMetadata) {
  PacketPool pool(4);
  auto p = pool.alloc();
  auto raw = p->raw();
  raw[0] = 0xab;
  raw[99] = 0xcd;
  p->set_len(100);
  p->rx_time_ns = 777;
  auto c = pool.clone(*p);
  ASSERT_TRUE(c);
  EXPECT_EQ(c->len(), 100u);
  EXPECT_EQ(c->data()[0], 0xab);
  EXPECT_EQ(c->data()[99], 0xcd);
  EXPECT_EQ(c->rx_time_ns, 777);
}

TEST(Packet, SetLenClampsToCapacity) {
  PacketPool pool(1);
  auto p = pool.alloc();
  p->set_len(1 << 20);
  EXPECT_EQ(p->len(), kPacketCapacity);
}

TEST(Port, SendDeliversWithLatency) {
  PacketPool pool(4);
  Port a("a"), b("b");
  Port::connect(a, b, 1500);
  auto p = pool.alloc();
  p->set_len(64);
  p->rx_time_ns = 1000;
  ASSERT_TRUE(a.send(std::move(p)));
  std::vector<PacketPtr> rx;
  ASSERT_EQ(b.rx_burst(rx), 1u);
  EXPECT_EQ(rx[0]->rx_time_ns, 2500);
  EXPECT_EQ(a.stats().tx_packets, 1u);
  EXPECT_EQ(b.stats().rx_packets, 1u);
}

TEST(Port, UnconnectedSendDrops) {
  PacketPool pool(2);
  Port a("a");
  auto p = pool.alloc();
  p->set_len(10);
  EXPECT_FALSE(a.send(std::move(p)));
  EXPECT_EQ(pool.in_use(), 0u);  // buffer returned
}

TEST(Port, LinkDownDropsTraffic) {
  PacketPool pool(2);
  Port a("a"), b("b");
  Port::connect(a, b, 100);
  b.set_link_up(false);
  auto p = pool.alloc();
  p->set_len(10);
  EXPECT_FALSE(a.send(std::move(p)));
  b.set_link_up(true);
  auto q = pool.alloc();
  q->set_len(10);
  EXPECT_TRUE(a.send(std::move(q)));
}

TEST(Port, RxQueueOverflowCountsDrops) {
  PacketPool pool(16);
  Port a("a"), b("b", /*rx_queue_cap=*/2);
  Port::connect(a, b, 0);
  for (int i = 0; i < 5; ++i) {
    auto p = pool.alloc();
    p->set_len(8);
    a.send(std::move(p));
  }
  EXPECT_EQ(b.rx_pending(), 2u);
  EXPECT_EQ(b.stats().rx_dropped, 3u);
}

PacketPtr frame_to(const MacAddr& dst, const MacAddr& src) {
  auto p = PacketPool::default_pool().alloc();
  auto raw = p->raw();
  std::copy(dst.bytes.begin(), dst.bytes.end(), raw.begin());
  std::copy(src.bytes.begin(), src.bytes.end(), raw.begin() + 6);
  raw[12] = 0xae;
  raw[13] = 0xfe;
  p->set_len(64);
  return p;
}

TEST(EmbeddedSwitch, LearnsAndForwards) {
  EmbeddedSwitch sw("sw");
  Port e1("e1"), e2("e2"), e3("e3");
  Port::connect(e1, sw.add_port("p1"), 0);
  Port::connect(e2, sw.add_port("p2"), 0);
  Port::connect(e3, sw.add_port("p3"), 0);

  // Unknown destination floods (e2 and e3 get copies).
  e1.send(frame_to(MacAddr::ru(2), MacAddr::du(1)));
  std::vector<PacketPtr> rx;
  EXPECT_EQ(e2.rx_burst(rx), 1u);
  rx.clear();
  EXPECT_EQ(e3.rx_burst(rx), 1u);
  rx.clear();
  EXPECT_EQ(sw.flooded(), 1u);

  // Reply teaches the switch where du(1) lives; now unicast.
  e2.send(frame_to(MacAddr::du(1), MacAddr::ru(2)));
  EXPECT_EQ(e1.rx_burst(rx), 1u);
  rx.clear();
  EXPECT_EQ(e3.rx_burst(rx), 0u);
  // And ru(2) was learned from the reply's source.
  e1.send(frame_to(MacAddr::ru(2), MacAddr::du(1)));
  EXPECT_EQ(e2.rx_burst(rx), 1u);
  rx.clear();
  EXPECT_EQ(e3.rx_burst(rx), 0u);
  EXPECT_GE(sw.forwarded(), 2u);
}

TEST(EmbeddedSwitch, StaticEntriesBeatLearning) {
  EmbeddedSwitch sw("sw");
  Port e1("e1"), e2("e2"), e3("e3");
  auto& p1 = sw.add_port("p1");
  auto& p2 = sw.add_port("p2");
  auto& p3 = sw.add_port("p3");
  Port::connect(e1, p1, 0);
  Port::connect(e2, p2, 0);
  Port::connect(e3, p3, 0);
  sw.add_static_entry(MacAddr::ru(7), p3);
  e1.send(frame_to(MacAddr::ru(7), MacAddr::du(0)));
  std::vector<PacketPtr> rx;
  EXPECT_EQ(e3.rx_burst(rx), 1u);
  rx.clear();
  EXPECT_EQ(e2.rx_burst(rx), 0u);
  EXPECT_EQ(sw.flooded(), 0u);
}

TEST(Nic, VfSteeringAndPcieAccounting) {
  Nic nic("nic0", 4);
  Port wire_peer("wire_peer");
  Port::connect(wire_peer, nic.wire_port(), 0);
  Port& vf = nic.create_vf("vf0");
  nic.steer(MacAddr::mb(0), vf);
  wire_peer.send(frame_to(MacAddr::mb(0), MacAddr::du(0)));
  std::vector<PacketPtr> rx;
  EXPECT_EQ(vf.rx_burst(rx), 1u);
  EXPECT_GT(nic.pcie_bytes(), 0u);
}

TEST(Nic, VfLimitEnforced) {
  Nic nic("nic0", 2);
  nic.create_vf("a");
  nic.create_vf("b");
  EXPECT_THROW(nic.create_vf("c"), std::length_error);
}

TEST(PollDriver, AlwaysFullUtilization) {
  Port a("a"), b("b");
  Port::connect(a, b, 0);
  PollDriver drv(b);
  EXPECT_DOUBLE_EQ(drv.utilization(1'000'000), 1.0);
}

TEST(IrqDriver, UtilizationScalesWithWork) {
  Port a("a"), b("b");
  Port::connect(a, b, 0);
  IrqDriver drv(b);
  EXPECT_DOUBLE_EQ(drv.utilization(1'000'000), 0.0);
  drv.charge_handler(250'000, ProcessingLocus::Kernel);
  EXPECT_NEAR(drv.utilization(1'000'000), 0.25, 1e-9);
  drv.meter().reset();
  EXPECT_DOUBLE_EQ(drv.utilization(1'000'000), 0.0);
}

TEST(IrqDriver, UserspacePuntCostsMore) {
  Port a("a"), b("b");
  Port::connect(a, b, 0);
  DriverCosts costs;
  IrqDriver kdrv(b, costs);
  kdrv.charge_handler(100, ProcessingLocus::Kernel);
  const auto kernel_busy = kdrv.meter().busy_ns();
  kdrv.meter().reset();
  kdrv.charge_handler(100, ProcessingLocus::Userspace);
  EXPECT_EQ(kdrv.meter().busy_ns(), kernel_busy + costs.afxdp_redirect_ns);
}

TEST(IrqDriver, JumboFramesCostMoreOnRx) {
  PacketPool pool(4);
  Port a("a"), b1("b1"), c("c"), b2("b2");
  Port::connect(a, b1, 0);
  Port::connect(c, b2, 0);
  DriverCosts costs;
  IrqDriver small(b1, costs), jumbo(b2, costs);
  auto p = pool.alloc();
  p->set_len(100);
  a.send(std::move(p));
  auto q = pool.alloc();
  q->set_len(8000);
  c.send(std::move(q));
  std::vector<PacketPtr> rx;
  small.rx_burst(rx);
  rx.clear();
  jumbo.rx_burst(rx);
  EXPECT_GT(jumbo.meter().busy_ns(), small.meter().busy_ns());
}

}  // namespace
}  // namespace rb
