// Unit tests for the packet I/O substrate: pools, ports, switch, NIC/VFs,
// drivers.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "net/driver.h"
#include "net/nic.h"
#include "net/packet.h"
#include "net/switch.h"

namespace rb {
namespace {

TEST(PacketPool, AllocReleaseCycle) {
  PacketPool pool(4);
  EXPECT_EQ(pool.capacity(), 4u);
  {
    auto a = pool.alloc();
    auto b = pool.alloc();
    ASSERT_TRUE(a && b);
    EXPECT_EQ(pool.in_use(), 2u);
  }
  EXPECT_EQ(pool.in_use(), 0u);  // RAII return
}

TEST(PacketPool, ExhaustionReturnsNull) {
  PacketPool pool(2);
  auto a = pool.alloc();
  auto b = pool.alloc();
  auto c = pool.alloc();
  EXPECT_TRUE(a && b);
  EXPECT_FALSE(c);
  EXPECT_EQ(pool.alloc_failures(), 1u);
}

TEST(PacketPool, CloneCopiesDataAndMetadata) {
  PacketPool pool(4);
  auto p = pool.alloc();
  auto raw = p->raw();
  raw[0] = 0xab;
  raw[99] = 0xcd;
  p->set_len(100);
  p->rx_time_ns = 777;
  auto c = pool.clone(*p);
  ASSERT_TRUE(c);
  EXPECT_EQ(c->len(), 100u);
  EXPECT_EQ(c->data()[0], 0xab);
  EXPECT_EQ(c->data()[99], 0xcd);
  EXPECT_EQ(c->rx_time_ns, 777);
}

TEST(Packet, SetLenClampsToCapacity) {
  PacketPool pool(1);
  auto p = pool.alloc();
  p->set_len(1 << 20);
  EXPECT_EQ(p->len(), kPacketCapacity);
}

// Build a packet with a recognizable pattern: bytes [0, split) hold 0x11,
// the "payload" [split, len) holds 0x22.
PacketPtr patterned(PacketPool& pool, std::size_t split, std::size_t len) {
  auto p = pool.alloc();
  auto raw = p->raw();
  std::fill(raw.begin(), raw.begin() + split, 0x11);
  std::fill(raw.begin() + split, raw.begin() + len, 0x22);
  p->set_len(len);
  return p;
}

TEST(PacketShare, ReplicateSharesPayloadAndCountsRefs) {
  PacketPool pool(8);
  auto p = patterned(pool, 32, 512);
  EXPECT_EQ(p->slot_refcount(), 1u);
  auto r = pool.replicate(*p, 32);
  ASSERT_TRUE(r);
  EXPECT_TRUE(r->shares_payload());
  EXPECT_EQ(r->private_split(), 32u);
  EXPECT_EQ(p->slot_refcount(), 2u);
  EXPECT_EQ(pool.replicas_zero_copy(), 1u);
  EXPECT_EQ(pool.shared_segments(), 1);
  // Replica resolves to identical bytes: private head + shared payload.
  EXPECT_EQ(r->len(), 512u);
  EXPECT_EQ(r->bytes(0, 32)[0], 0x11);
  EXPECT_EQ(r->bytes(32)[0], 0x22);
  EXPECT_EQ(r->bytes(32).data(), p->bytes(32).data());  // genuinely shared
  r.reset();
  EXPECT_EQ(p->slot_refcount(), 1u);
  EXPECT_EQ(pool.shared_segments(), 0);
}

TEST(PacketShare, ReplicaHeaderWriteStaysPrivate) {
  PacketPool pool(8);
  auto p = patterned(pool, 32, 512);
  auto r = pool.replicate(*p, 32);
  ASSERT_TRUE(r);
  r->mutable_prefix(14)[0] = 0x77;  // MAC rewrite stays in the private head
  EXPECT_TRUE(r->shares_payload());  // no promotion
  EXPECT_EQ(pool.cow_promotions(), 0u);
  EXPECT_EQ(p->data()[0], 0x11);  // source head untouched
  EXPECT_EQ(r->data()[0], 0x77);
}

TEST(PacketShare, WriteIntoSharedRegionPromotesWriterOnly) {
  PacketPool pool(8);
  auto p = patterned(pool, 32, 512);
  auto r1 = pool.replicate(*p, 32);
  auto r2 = pool.replicate(*p, 32);
  ASSERT_TRUE(r1 && r2);
  EXPECT_EQ(p->slot_refcount(), 3u);
  r1->mutable_data()[100] = 0x99;  // payload write: forces a private copy
  EXPECT_FALSE(r1->shares_payload());
  EXPECT_EQ(pool.cow_promotions(), 1u);
  EXPECT_EQ(p->slot_refcount(), 2u);  // r1 detached
  // The writer sees its write; peer replica and source see old bytes.
  EXPECT_EQ(r1->bytes(100, 1)[0], 0x99);
  EXPECT_EQ(r2->bytes(100, 1)[0], 0x22);
  EXPECT_EQ(p->bytes(100, 1)[0], 0x22);
}

TEST(PacketShare, OwnerWriteCopiesOutLeavingReplicaSnapshot) {
  PacketPool pool(8);
  auto p = patterned(pool, 32, 512);
  auto r = pool.replicate(*p, 32);
  ASSERT_TRUE(r);
  p->mutable_data()[200] = 0xee;  // owner writes into the shared region
  EXPECT_EQ(pool.cow_promotions(), 1u);
  EXPECT_EQ(p->bytes(200, 1)[0], 0xee);
  EXPECT_EQ(r->bytes(200, 1)[0], 0x22);  // replica keeps its snapshot
}

TEST(PacketShare, AliasSharesEveryByte) {
  PacketPool pool(8);
  auto p = patterned(pool, 32, 512);
  auto a = pool.replicate(*p, 0);
  ASSERT_TRUE(a);
  EXPECT_TRUE(a->shares_payload());
  EXPECT_EQ(a->private_split(), 0u);
  EXPECT_EQ(a->data().data(), p->data().data());  // same underlying slot
  EXPECT_EQ(a->data()[0], 0x11);
  a->mutable_prefix(14)[0] = 0x55;  // any write promotes the whole frame
  EXPECT_FALSE(a->shares_payload());
  EXPECT_EQ(a->data()[0], 0x55);
  EXPECT_EQ(a->data()[511], 0x22);  // tail copied before the write
  EXPECT_EQ(p->data()[0], 0x11);
}

TEST(PacketShare, OwnerDiesBeforeReplica) {
  PacketPool pool(4);
  auto p = patterned(pool, 32, 512);
  auto r = pool.replicate(*p, 32);
  ASSERT_TRUE(r);
  p.reset();  // owner gone; segment must outlive it
  EXPECT_EQ(pool.in_use(), 1u);
  EXPECT_EQ(r->bytes(32)[0], 0x22);
  EXPECT_EQ(r->bytes(0, 32)[0], 0x11);
  r.reset();
  EXPECT_EQ(pool.in_use(), 0u);
  // Every pair must be whole again: the full capacity allocates.
  std::vector<PacketPtr> all;
  for (std::size_t i = 0; i < pool.capacity(); ++i) {
    all.push_back(pool.alloc());
    ASSERT_TRUE(all.back());
  }
}

TEST(PacketShare, CloneAndCopyToFlattenReplicas) {
  PacketPool pool(8);
  auto p = patterned(pool, 32, 512);
  auto r = pool.replicate(*p, 32);
  ASSERT_TRUE(r);
  auto flat = pool.clone(*r);
  ASSERT_TRUE(flat);
  EXPECT_FALSE(flat->shares_payload());
  EXPECT_EQ(flat->data()[0], 0x11);
  EXPECT_EQ(flat->data()[100], 0x22);
  std::vector<std::uint8_t> out(r->len());
  r->copy_to(out);
  EXPECT_EQ(out[0], 0x11);
  EXPECT_EQ(out[511], 0x22);
}

TEST(PacketShare, ReplicaOfReplicaAttachesToRootSegment) {
  PacketPool pool(8);
  auto p = patterned(pool, 32, 512);
  auto r1 = pool.replicate(*p, 32);
  ASSERT_TRUE(r1);
  r1->mutable_prefix(14)[0] = 0x77;  // per-egress rewrite in r1's head
  auto r2 = pool.replicate(*r1, 32);
  ASSERT_TRUE(r2);
  EXPECT_EQ(p->slot_refcount(), 3u);  // both replicas reference the root
  EXPECT_EQ(r2->data()[0], 0x77);     // r2 sees r1's rewritten head
  EXPECT_EQ(r2->bytes(32).data(), p->bytes(32).data());
}

TEST(PacketPoolShared, CrossThreadReplicaSoak) {
  // Replicas die on different threads than their segment owners: one
  // producer fans each frame out to N consumer threads, which read the
  // shared payload and release. TSan-checked in CI.
  constexpr int kConsumers = 3;
  constexpr int kRounds = 2000;
  PacketPool pool(256);
  std::mutex mu[kConsumers];
  std::vector<PacketPtr> q[kConsumers];
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> sum{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      std::uint64_t local = 0;
      for (;;) {
        PacketPtr p;
        {
          std::lock_guard<std::mutex> lk(mu[c]);
          if (!q[c].empty()) {
            p = std::move(q[c].back());
            q[c].pop_back();
          }
        }
        if (p) {
          local += p->bytes(32)[0] + p->bytes(0, 32)[0];
          if ((local & 7) == 0) p->mutable_data()[40] ^= 0x1;  // force CoW
        } else if (done.load(std::memory_order_acquire)) {
          break;
        } else {
          std::this_thread::yield();
        }
      }
      sum.fetch_add(local, std::memory_order_relaxed);
    });
  }
  constexpr std::size_t kMaxQueueDepth = 16;  // backpressure: don't outrun
  for (int i = 0; i < kRounds; ++i) {         // the consumers and drain the pool
    auto p = patterned(pool, 32, 256);
    ASSERT_TRUE(p);
    for (int c = 0; c < kConsumers; ++c) {
      auto r = pool.replicate(*p, 32);
      ASSERT_TRUE(r);
      for (;;) {
        {
          std::lock_guard<std::mutex> lk(mu[c]);
          if (q[c].size() < kMaxQueueDepth) {
            q[c].push_back(std::move(r));
            break;
          }
        }
        std::this_thread::yield();
      }
    }
    // Alternate who holds the segment longest.
    if (i & 1) p.reset();
  }
  done.store(true, std::memory_order_release);
  for (auto& t : consumers) t.join();
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_GT(sum.load(), 0u);
  // Pool integrity after all the re-pairing churn.
  std::vector<PacketPtr> all;
  for (std::size_t i = 0; i < pool.capacity(); ++i) {
    all.push_back(pool.alloc());
    ASSERT_TRUE(all.back());
  }
}

TEST(Port, SendDeliversWithLatency) {
  PacketPool pool(4);
  Port a("a"), b("b");
  Port::connect(a, b, 1500);
  auto p = pool.alloc();
  p->set_len(64);
  p->rx_time_ns = 1000;
  ASSERT_TRUE(a.send(std::move(p)));
  std::vector<PacketPtr> rx;
  ASSERT_EQ(b.rx_burst(rx), 1u);
  EXPECT_EQ(rx[0]->rx_time_ns, 2500);
  EXPECT_EQ(a.stats().tx_packets, 1u);
  EXPECT_EQ(b.stats().rx_packets, 1u);
}

TEST(Port, UnconnectedSendDrops) {
  PacketPool pool(2);
  Port a("a");
  auto p = pool.alloc();
  p->set_len(10);
  EXPECT_FALSE(a.send(std::move(p)));
  EXPECT_EQ(pool.in_use(), 0u);  // buffer returned
}

TEST(Port, LinkDownDropsTraffic) {
  PacketPool pool(2);
  Port a("a"), b("b");
  Port::connect(a, b, 100);
  b.set_link_up(false);
  auto p = pool.alloc();
  p->set_len(10);
  EXPECT_FALSE(a.send(std::move(p)));
  b.set_link_up(true);
  auto q = pool.alloc();
  q->set_len(10);
  EXPECT_TRUE(a.send(std::move(q)));
}

TEST(Port, RxQueueOverflowCountsDrops) {
  PacketPool pool(16);
  Port a("a"), b("b", /*rx_queue_cap=*/2);
  Port::connect(a, b, 0);
  for (int i = 0; i < 5; ++i) {
    auto p = pool.alloc();
    p->set_len(8);
    a.send(std::move(p));
  }
  EXPECT_EQ(b.rx_pending(), 2u);
  EXPECT_EQ(b.stats().rx_dropped, 3u);
}

PacketPtr frame_to(const MacAddr& dst, const MacAddr& src) {
  auto p = PacketPool::default_pool().alloc();
  auto raw = p->raw();
  std::copy(dst.bytes.begin(), dst.bytes.end(), raw.begin());
  std::copy(src.bytes.begin(), src.bytes.end(), raw.begin() + 6);
  raw[12] = 0xae;
  raw[13] = 0xfe;
  p->set_len(64);
  return p;
}

TEST(EmbeddedSwitch, LearnsAndForwards) {
  EmbeddedSwitch sw("sw");
  Port e1("e1"), e2("e2"), e3("e3");
  Port::connect(e1, sw.add_port("p1"), 0);
  Port::connect(e2, sw.add_port("p2"), 0);
  Port::connect(e3, sw.add_port("p3"), 0);

  // Unknown destination floods (e2 and e3 get copies).
  e1.send(frame_to(MacAddr::ru(2), MacAddr::du(1)));
  std::vector<PacketPtr> rx;
  EXPECT_EQ(e2.rx_burst(rx), 1u);
  rx.clear();
  EXPECT_EQ(e3.rx_burst(rx), 1u);
  rx.clear();
  EXPECT_EQ(sw.flooded(), 1u);

  // Reply teaches the switch where du(1) lives; now unicast.
  e2.send(frame_to(MacAddr::du(1), MacAddr::ru(2)));
  EXPECT_EQ(e1.rx_burst(rx), 1u);
  rx.clear();
  EXPECT_EQ(e3.rx_burst(rx), 0u);
  // And ru(2) was learned from the reply's source.
  e1.send(frame_to(MacAddr::ru(2), MacAddr::du(1)));
  EXPECT_EQ(e2.rx_burst(rx), 1u);
  rx.clear();
  EXPECT_EQ(e3.rx_burst(rx), 0u);
  EXPECT_GE(sw.forwarded(), 2u);
}

TEST(EmbeddedSwitch, FloodSendsAliasReplicasAndMovesOriginalToLast) {
  EmbeddedSwitch sw("sw");
  Port e1("e1"), e2("e2"), e3("e3");
  Port::connect(e1, sw.add_port("p1"), 0);
  Port::connect(e2, sw.add_port("p2"), 0);
  Port::connect(e3, sw.add_port("p3"), 0);
  const std::size_t before = PacketPool::default_pool().in_use();
  e1.send(frame_to(MacAddr::ru(9), MacAddr::du(8)));
  // Two egress ports, but only one extra buffer: the original moved to
  // the last port and the other got a zero-copy alias.
  EXPECT_EQ(PacketPool::default_pool().in_use(), before + 2);
  std::vector<PacketPtr> rx2, rx3;
  ASSERT_EQ(e2.rx_burst(rx2), 1u);
  ASSERT_EQ(e3.rx_burst(rx3), 1u);
  EXPECT_TRUE(rx2[0]->shares_payload());   // alias replica
  EXPECT_FALSE(rx3[0]->shares_payload());  // the original itself
  EXPECT_EQ(rx2[0]->data()[0], rx3[0]->data()[0]);
  EXPECT_EQ(rx2[0]->len(), rx3[0]->len());
}

TEST(EmbeddedSwitch, CountsRuntDrops) {
  EmbeddedSwitch sw("sw");
  Port e1("e1"), e2("e2");
  Port::connect(e1, sw.add_port("p1"), 0);
  Port::connect(e2, sw.add_port("p2"), 0);
  auto p = PacketPool::default_pool().alloc();
  p->set_len(10);  // shorter than an Ethernet header
  e1.send(std::move(p));
  EXPECT_EQ(sw.runt_dropped(), 1u);
  EXPECT_EQ(sw.flooded(), 0u);
  EXPECT_EQ(sw.forwarded(), 0u);
  std::vector<PacketPtr> rx;
  EXPECT_EQ(e2.rx_burst(rx), 0u);
}

TEST(EmbeddedSwitch, StaticEntriesBeatLearning) {
  EmbeddedSwitch sw("sw");
  Port e1("e1"), e2("e2"), e3("e3");
  auto& p1 = sw.add_port("p1");
  auto& p2 = sw.add_port("p2");
  auto& p3 = sw.add_port("p3");
  Port::connect(e1, p1, 0);
  Port::connect(e2, p2, 0);
  Port::connect(e3, p3, 0);
  sw.add_static_entry(MacAddr::ru(7), p3);
  e1.send(frame_to(MacAddr::ru(7), MacAddr::du(0)));
  std::vector<PacketPtr> rx;
  EXPECT_EQ(e3.rx_burst(rx), 1u);
  rx.clear();
  EXPECT_EQ(e2.rx_burst(rx), 0u);
  EXPECT_EQ(sw.flooded(), 0u);
}

TEST(Nic, VfSteeringAndPcieAccounting) {
  Nic nic("nic0", 4);
  Port wire_peer("wire_peer");
  Port::connect(wire_peer, nic.wire_port(), 0);
  Port& vf = nic.create_vf("vf0");
  nic.steer(MacAddr::mb(0), vf);
  wire_peer.send(frame_to(MacAddr::mb(0), MacAddr::du(0)));
  std::vector<PacketPtr> rx;
  EXPECT_EQ(vf.rx_burst(rx), 1u);
  EXPECT_GT(nic.pcie_bytes(), 0u);
}

TEST(Nic, VfLimitEnforced) {
  Nic nic("nic0", 2);
  nic.create_vf("a");
  nic.create_vf("b");
  EXPECT_THROW(nic.create_vf("c"), std::length_error);
}

TEST(PollDriver, AlwaysFullUtilization) {
  Port a("a"), b("b");
  Port::connect(a, b, 0);
  PollDriver drv(b);
  EXPECT_DOUBLE_EQ(drv.utilization(1'000'000), 1.0);
}

TEST(IrqDriver, UtilizationScalesWithWork) {
  Port a("a"), b("b");
  Port::connect(a, b, 0);
  IrqDriver drv(b);
  EXPECT_DOUBLE_EQ(drv.utilization(1'000'000), 0.0);
  drv.charge_handler(250'000, ProcessingLocus::Kernel);
  EXPECT_NEAR(drv.utilization(1'000'000), 0.25, 1e-9);
  drv.meter().reset();
  EXPECT_DOUBLE_EQ(drv.utilization(1'000'000), 0.0);
}

TEST(IrqDriver, UserspacePuntCostsMore) {
  Port a("a"), b("b");
  Port::connect(a, b, 0);
  DriverCosts costs;
  IrqDriver kdrv(b, costs);
  kdrv.charge_handler(100, ProcessingLocus::Kernel);
  const auto kernel_busy = kdrv.meter().busy_ns();
  kdrv.meter().reset();
  kdrv.charge_handler(100, ProcessingLocus::Userspace);
  EXPECT_EQ(kdrv.meter().busy_ns(), kernel_busy + costs.afxdp_redirect_ns);
}

TEST(IrqDriver, JumboFramesCostMoreOnRx) {
  PacketPool pool(4);
  Port a("a"), b1("b1"), c("c"), b2("b2");
  Port::connect(a, b1, 0);
  Port::connect(c, b2, 0);
  DriverCosts costs;
  IrqDriver small(b1, costs), jumbo(b2, costs);
  auto p = pool.alloc();
  p->set_len(100);
  a.send(std::move(p));
  auto q = pool.alloc();
  q->set_len(8000);
  c.send(std::move(q));
  std::vector<PacketPtr> rx;
  small.rx_burst(rx);
  rx.clear();
  jumbo.rx_burst(rx);
  EXPECT_GT(jumbo.meter().busy_ns(), small.meter().busy_ns());
}

}  // namespace
}  // namespace rb
