// End-to-end RU sharing (paper 4.3 / 6.2.3, Figure 10b): two 40 MHz DUs
// share one 100 MHz RU; each cell's throughput equals a dedicated-RU
// baseline. PRACH attach flows through the Algorithm 3 combine/demux with
// the Appendix A.1 frequency translation.
#include <gtest/gtest.h>

#include "sim/deployment.h"

namespace rb {
namespace {

CellConfig cell40(Hertz center, std::uint16_t pci) {
  CellConfig c;
  c.bandwidth = MHz(40);
  c.center_freq = center;
  c.max_layers = 4;
  c.pci = pci;
  return c;
}

/// Dedicated 40 MHz RU baseline.
void baseline40(double* dl, double* ul) {
  Deployment d;
  auto du = d.add_du(cell40(GHz(3) + MHz(430), 1), srsran_profile(), 0);
  RuSite s;
  s.pos = d.plan.ru_position(0, 1);
  s.n_antennas = 4;
  s.bandwidth = MHz(40);
  s.center_freq = GHz(3) + MHz(430);
  auto ru = d.add_ru(s, 0, du.du->fh());
  d.connect_direct(du, ru);
  const UeId ue = d.add_ue(d.plan.near_ru(0, 1, 5.0), &du, 500.0, 50.0);
  ASSERT_TRUE(d.attach_all(400));
  d.measure(400);
  *dl = d.dl_mbps(ue);
  *ul = d.ul_mbps(ue);
}

struct ShareRig {
  Deployment d;
  Deployment::DuHandle du_a, du_b;
  Deployment::RuHandle ru;
  MiddleboxRuntime* rt = nullptr;
  UeId ue_a = -1, ue_b = -1;

  /// 100 MHz RU at 3.46 GHz shared by 40 MHz cells. Aligned grids: the
  /// RU has 273 PRBs; cell A sits at PRB 10, cell B at PRB 150 (both
  /// centered per the Appendix A.1.1 formula).
  explicit ShareRig(int shift_sc = 0) {
    const Hertz ru_center = GHz(3) + MHz(460);
    RuSite s;
    s.pos = d.plan.ru_position(0, 1);
    s.n_antennas = 4;
    s.bandwidth = MHz(100);
    s.center_freq = ru_center;

    const Hertz ca = aligned_du_center_frequency(ru_center, 273, 106, 10,
                                                 Scs::kHz30);
    const Hertz cb = aligned_du_center_frequency(ru_center, 273, 106, 150,
                                                 Scs::kHz30);
    du_a = d.add_du(cell40(ca, 1), srsran_profile(), 0);
    du_b = d.add_du(cell40(cb, 2), srsran_profile(), 1);
    ru = d.add_ru(s, 0, du_a.du->fh());
    rt = &d.add_rushare({&du_a, &du_b}, ru, DriverKind::Dpdk, shift_sc);
    // Forced association by PCI (paper 6.2.3).
    ue_a = d.add_ue(d.plan.near_ru(0, 1, 5.0), &du_a, 500.0, 50.0, 1);
    ue_b = d.add_ue(d.plan.near_ru(0, 1, -5.0), &du_b, 500.0, 50.0, 2);
  }
};

TEST(E2eRuShare, BothUesAttachThroughSharedRu) {
  ShareRig rig;
  ASSERT_TRUE(rig.d.attach_all(600));
  EXPECT_EQ(rig.d.air.serving_cell(rig.ue_a), rig.du_a.cell);
  EXPECT_EQ(rig.d.air.serving_cell(rig.ue_b), rig.du_b.cell);
  EXPECT_GT(rig.rt->telemetry().counter("rushare_prach_combined"), 0u);
  EXPECT_GT(rig.rt->telemetry().counter("rushare_prach_demuxed"), 0u);
}

TEST(E2eRuShare, SharedThroughputMatchesDedicatedBaseline) {
  double base_dl = 0, base_ul = 0;
  baseline40(&base_dl, &base_ul);
  // Paper: ~330 Mbps DL / ~25 Mbps UL per 40 MHz cell.
  EXPECT_NEAR(base_dl, 330.0, 330.0 * 0.12);
  EXPECT_NEAR(base_ul, 25.0, 25.0 * 0.25);

  ShareRig rig;
  ASSERT_TRUE(rig.d.attach_all(600));
  rig.d.measure(400);
  EXPECT_NEAR(rig.d.dl_mbps(rig.ue_a), base_dl, base_dl * 0.10);
  EXPECT_NEAR(rig.d.dl_mbps(rig.ue_b), base_dl, base_dl * 0.10);
  EXPECT_NEAR(rig.d.ul_mbps(rig.ue_a), base_ul, base_ul * 0.20);
  EXPECT_NEAR(rig.d.ul_mbps(rig.ue_b), base_ul, base_ul * 0.20);
  EXPECT_GT(rig.rt->telemetry().counter("rushare_dl_muxed"), 0u);
  EXPECT_GT(rig.rt->telemetry().counter("rushare_ul_demuxed"), 0u);
  EXPECT_EQ(rig.rt->telemetry().counter("rushare_mux_failures"), 0u);
}

TEST(E2eRuShare, MisalignedGridsStillWorkViaRecompression) {
  // Figure 6 right: half-PRB misalignment forces the decompress-shift-
  // recompress path; traffic still flows, at higher per-packet cost.
  ShareRig aligned(0), misaligned(6);
  ASSERT_TRUE(aligned.d.attach_all(600));
  ASSERT_TRUE(misaligned.d.attach_all(600));
  aligned.d.measure(200);
  misaligned.d.measure(200);
  EXPECT_GT(misaligned.d.dl_mbps(misaligned.ue_a),
            0.8 * aligned.d.dl_mbps(aligned.ue_a));
  // The misaligned path must have done codec work; the aligned one none.
  EXPECT_GT(misaligned.rt->last_slot_max_latency_ns(), 0);
}

}  // namespace
}  // namespace rb
