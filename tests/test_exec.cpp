// Parallel execution engine: ring primitives, worker pool, and the core
// guarantee — a flow-sharded parallel slot produces packet-for-packet the
// same results as the serial engine.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "exec/mpsc_drain.h"
#include "exec/shard.h"
#include "exec/spsc_ring.h"
#include "exec/worker_pool.h"
#include "sim/deployment.h"

namespace rb {
namespace {

// ----------------------------------------------------------------------
// SPSC ring
// ----------------------------------------------------------------------

TEST(SpscRing, FifoFullAndWraparound) {
  exec::SpscRing<int> ring(4);  // rounded to a power of two >= 4
  EXPECT_TRUE(ring.empty_approx());

  // Fill to capacity, then overflow must be rejected.
  int pushed = 0;
  while (ring.try_push(pushed)) ++pushed;
  EXPECT_GE(pushed, 4);
  EXPECT_FALSE(ring.try_push(999));

  // Drain in FIFO order.
  int v = -1;
  for (int i = 0; i < pushed; ++i) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.try_pop(v));

  // Wrap the indices around the ring many times.
  for (int round = 0; round < 1000; ++round) {
    ASSERT_TRUE(ring.try_push(round));
    ASSERT_TRUE(ring.try_push(-round));
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, round);
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, -round);
  }
  EXPECT_TRUE(ring.empty_approx());
}

TEST(SpscRing, TwoThreadStressPreservesSequence) {
  exec::SpscRing<std::uint64_t> ring(256);
  constexpr std::uint64_t kN = 1'000'000;

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kN;) {
      if (ring.try_push(i))
        ++i;
      else
        std::this_thread::yield();
    }
  });

  std::uint64_t expect = 0;
  std::uint64_t v = 0;
  while (expect < kN) {
    if (ring.try_pop(v)) {
      ASSERT_EQ(v, expect);  // strict FIFO, nothing lost or duplicated
      ++expect;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_FALSE(ring.try_pop(v));
}

// ----------------------------------------------------------------------
// MPSC drain
// ----------------------------------------------------------------------

TEST(MpscDrain, MultiProducerStressKeepsPerProducerFifo) {
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 200'000;
  exec::MpscDrain<std::pair<int, std::uint64_t>> drain(kProducers, 1024);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer;) {
        if (drain.try_push(std::size_t(p), {p, i}))
          ++i;
        else
          std::this_thread::yield();
      }
    });
  }

  std::vector<std::uint64_t> next(kProducers, 0);
  std::uint64_t total = 0;
  while (total < kProducers * kPerProducer) {
    drain.drain([&](const std::pair<int, std::uint64_t>& e) {
      ASSERT_EQ(e.second, next[std::size_t(e.first)]);  // per-lane FIFO
      ++next[std::size_t(e.first)];
      ++total;
    });
  }
  for (auto& t : producers) t.join();
  drain.drain([&](const auto&) { FAIL() << "drain not empty"; });
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(next[p], kPerProducer);
}

// ----------------------------------------------------------------------
// Flow sharding
// ----------------------------------------------------------------------

TEST(Shard, StableKeysAndBoundedShards) {
  const std::uint64_t k = exec::flow_key(7, 2);
  EXPECT_EQ(k, exec::flow_key(7, 2));                 // reproducible
  EXPECT_NE(k, exec::flow_key(7, 3));
  EXPECT_NE(k, exec::flow_key(8, 2));
  EXPECT_NE(exec::flow_key_extend(k, 1), k);
  for (std::size_t n = 1; n <= 16; ++n)
    for (std::uint32_t ru = 0; ru < 64; ++ru)
      EXPECT_LT(exec::shard_of(exec::flow_key(ru, 0), n), n);
  EXPECT_EQ(exec::shard_of(k, 0), 0u);
}

// ----------------------------------------------------------------------
// Worker pool
// ----------------------------------------------------------------------

TEST(WorkerPool, RoutesJobsToPinnedWorkersAndCountsStats) {
  exec::WorkerPool pool(3);
  ASSERT_EQ(pool.size(), 3);

  struct Probe {
    std::atomic<int> seen_worker{-1};
    std::atomic<int> runs{0};
  };
  std::vector<Probe> probes(64);
  auto fn = +[](void* arg, int worker) {
    auto* p = static_cast<Probe*>(arg);
    p->seen_worker.store(worker);
    p->runs.fetch_add(1);
  };

  for (int batch = 0; batch < 50; ++batch) {
    std::vector<exec::WorkerPool::Job> jobs;
    for (int i = 0; i < int(probes.size()); ++i)
      jobs.push_back({fn, &probes[std::size_t(i)], i % pool.size()});
    pool.run(jobs);
    for (int i = 0; i < int(probes.size()); ++i)
      ASSERT_EQ(probes[std::size_t(i)].seen_worker.load(), i % pool.size());
  }
  for (auto& p : probes) EXPECT_EQ(p.runs.load(), 50);

  const auto merged = pool.merged_stats();
  EXPECT_EQ(merged.jobs, probes.size() * 50);
  std::uint64_t per_worker = 0;
  for (int w = 0; w < pool.size(); ++w) per_worker += pool.stats(w).jobs;
  EXPECT_EQ(per_worker, merged.jobs);  // shards sum to the merged view

  pool.reset_stats();
  EXPECT_EQ(pool.merged_stats().jobs, 0u);
}

// ----------------------------------------------------------------------
// Telemetry interning + publish reentrancy (satellites a and f)
// ----------------------------------------------------------------------

TEST(TelemetryExec, InternedAndStringApisShareOneStore) {
  Telemetry t;
  const auto id = t.intern("hot");
  EXPECT_EQ(id, t.intern("hot"));  // idempotent
  t.inc(id, 5);
  t.inc("hot", 2);
  EXPECT_EQ(t.counter(id), 7u);
  EXPECT_EQ(t.counter("hot"), 7u);
  EXPECT_EQ(t.counter("never_bumped"), 0u);  // lookup must not intern junk
  const auto snap = t.counters();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap.at("hot"), 7u);
}

TEST(TelemetryExec, SubscribingFromInsideCallbackIsSafe) {
  Telemetry t;
  int outer = 0, inner = 0;
  t.subscribe([&](const TelemetrySample&) {
    ++outer;
    if (outer == 1)
      t.subscribe([&](const TelemetrySample&) { ++inner; });  // reentrant
  });
  t.publish({0, "k", 1.0});  // must not invalidate the iteration
  t.publish({1, "k", 2.0});
  EXPECT_EQ(outer, 2);
  EXPECT_EQ(inner, 1);  // late subscriber sees only the second sample
}

// ----------------------------------------------------------------------
// Determinism: parallel slot == serial slot, packet for packet
// ----------------------------------------------------------------------

// The DAS e2e scenario (one 100 MHz cell over five floor RUs) plus a
// second independent direct-wired cell, so the parallel engine has more
// than one island to spread.
struct Fingerprint {
  std::map<std::string, std::uint64_t> counters;
  std::vector<std::uint64_t> port_bytes;  // tx/rx bytes per port
  std::uint64_t dl_bits = 0, ul_bits = 0;
  std::int64_t slot = 0;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint run_scenario(const exec::ExecPolicy& policy, int slots) {
  Deployment d;
  CellConfig c;
  c.bandwidth = MHz(100);
  c.max_layers = 4;
  c.pci = 1;
  auto du = d.add_du(c, srsran_profile(), 0);
  std::vector<Deployment::RuHandle> rus;
  std::vector<Deployment::RuHandle*> ptrs;
  for (int f = 0; f < 5; ++f) {
    RuSite site;
    site.pos = d.plan.ru_position(f, 1);
    site.n_antennas = 4;
    site.bandwidth = MHz(100);
    site.center_freq = c.center_freq;
    rus.push_back(d.add_ru(site, std::uint8_t(f), du.du->fh()));
  }
  for (auto& r : rus) ptrs.push_back(&r);
  d.add_das(du, ptrs, DriverKind::Dpdk, 2);

  // Independent second cell on its own island.
  CellConfig c2;
  c2.bandwidth = MHz(100);
  c2.max_layers = 4;
  c2.pci = 2;
  c2.center_freq = c.center_freq + MHz(120);
  auto du2 = d.add_du(c2, srsran_profile(), 1);
  RuSite s2;
  s2.pos = d.plan.ru_position(0, 3);
  s2.n_antennas = 4;
  s2.bandwidth = MHz(100);
  s2.center_freq = c2.center_freq;
  auto ru2 = d.add_ru(s2, 5, du2.du->fh());
  d.connect_direct(du2, ru2);

  std::vector<UeId> ues;
  for (int f = 0; f < 5; ++f)
    ues.push_back(d.add_ue(d.plan.near_ru(f, 1, 4.0), &du, 200.0, 20.0));
  ues.push_back(d.add_ue(d.plan.near_ru(0, 3, 4.0), &du2, 200.0, 20.0, 2));

  d.engine.set_exec_policy(policy);
  d.engine.run_slots(slots);

  Fingerprint fp;
  fp.slot = d.engine.current_slot();
  for (const auto& rt : d.runtimes)
    for (const auto& [k, v] : rt->telemetry().counters())
      fp.counters[rt->config().name + "." + k] = v;
  for (const auto& p : d.ports) {
    fp.port_bytes.push_back(p->stats().tx_bytes);
    fp.port_bytes.push_back(p->stats().rx_bytes);
  }
  for (UeId ue : ues) {
    fp.dl_bits += d.air.dl_bits(ue);
    fp.ul_bits += d.air.ul_bits(ue);
  }
  return fp;
}

TEST(ExecDeterminism, ParallelMatchesSerialPacketForPacket) {
  constexpr int kSlots = 240;  // covers attach, PRACH, and steady traffic
  const Fingerprint serial = run_scenario(exec::ExecPolicy::serial(), kSlots);
  const Fingerprint par1 = run_scenario(exec::ExecPolicy::parallel(1), kSlots);
  const Fingerprint par4 = run_scenario(exec::ExecPolicy::parallel(4), kSlots);

  ASSERT_GT(serial.dl_bits, 0u);
  ASSERT_GT(serial.ul_bits, 0u);
  EXPECT_GT(serial.counters.at("das0.pkts_replicated"), 0u);

  EXPECT_EQ(par1, serial);
  EXPECT_EQ(par4, serial);
  EXPECT_EQ(par4, par1);
}

TEST(ExecDeterminism, PolicyCanFlipBackToSerialMidRun) {
  Deployment d;
  CellConfig c;
  c.bandwidth = MHz(40);
  auto du = d.add_du(c, srsran_profile(), 0);
  RuSite site;
  site.pos = d.plan.ru_position(0, 1);
  site.bandwidth = MHz(40);
  site.center_freq = c.center_freq;
  auto ru = d.add_ru(site, 0, du.du->fh());
  d.connect_direct(du, ru);
  const UeId ue = d.add_ue(d.plan.near_ru(0, 1, 4.0), &du, 50.0, 5.0);

  d.engine.set_exec_policy(exec::ExecPolicy::parallel(2));
  d.engine.run_slots(120);
  d.engine.set_exec_policy(exec::ExecPolicy::serial());
  d.engine.run_slots(120);
  EXPECT_TRUE(d.air.is_attached(ue));
  EXPECT_GT(d.air.dl_bits(ue), 0u);
}

}  // namespace
}  // namespace rb
