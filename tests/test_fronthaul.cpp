// Unit + property tests for the fronthaul protocol codecs: Ethernet,
// eCPRI, C-plane (types 1 and 3), U-plane, and the in-place rewrite
// helpers. Includes truncation-robustness sweeps.
#include <gtest/gtest.h>

#include <random>

#include "fronthaul/frame.h"
#include "iq/prb.h"

namespace rb {
namespace {

FhContext ctx273() {
  FhContext c;
  c.carrier_prbs = 273;
  return c;
}

TEST(EthHeader, RoundTripWithVlan) {
  EthHeader h;
  h.dst = MacAddr::ru(3);
  h.src = MacAddr::du(1);
  h.has_vlan = true;
  h.pcp = 7;
  h.vlan_id = 6;
  std::array<std::uint8_t, 32> buf{};
  BufWriter w(buf);
  h.encode(w);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.written(), h.wire_size());
  BufReader r(std::span<const std::uint8_t>(buf.data(), w.written()));
  auto back = EthHeader::parse(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, h);
}

TEST(EthHeader, RoundTripWithoutVlan) {
  EthHeader h;
  h.dst = MacAddr::broadcast();
  h.src = MacAddr::mb(9);
  h.has_vlan = false;
  std::array<std::uint8_t, 32> buf{};
  BufWriter w(buf);
  h.encode(w);
  BufReader r(std::span<const std::uint8_t>(buf.data(), w.written()));
  auto back = EthHeader::parse(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, h);
}

TEST(MacAddr, ParseAndFormat) {
  const MacAddr m = MacAddr::parse("02:d0:00:00:00:07");
  EXPECT_EQ(m, MacAddr::du(7));
  EXPECT_EQ(m.str(), "02:d0:00:00:00:07");
  EXPECT_EQ(MacAddr::parse("garbage"), MacAddr{});
  EXPECT_TRUE(MacAddr::broadcast().is_broadcast());
  EXPECT_FALSE(m.is_broadcast());
}

TEST(EaxcId, PackUnpackAllFields) {
  for (std::uint8_t du : {0, 1, 15}) {
    for (std::uint8_t port : {0, 3, 15}) {
      EaxcId id{du, std::uint8_t(du ^ 1), std::uint8_t(port / 2), port};
      EXPECT_EQ(EaxcId::unpack(id.packed()), id);
    }
  }
}

TEST(EcpriHeader, RoundTrip) {
  EcpriHeader h;
  h.msg_type = EcpriMsgType::RtControl;
  h.payload_size = 1234;
  h.eaxc = EaxcId{1, 2, 3, 4};
  h.seq_id = 99;
  h.sub_seq_id = 17;
  h.e_bit = false;
  std::array<std::uint8_t, 16> buf{};
  BufWriter w(buf);
  h.encode(w);
  EXPECT_EQ(w.written(), EcpriHeader::kWireSize);
  BufReader r(std::span<const std::uint8_t>(buf.data(), w.written()));
  auto back = EcpriHeader::parse(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, h);
}

TEST(EcpriHeader, RejectsWrongVersion) {
  std::array<std::uint8_t, 8> buf{0x20, 0, 0, 0, 0, 0, 0, 0};  // version 2
  BufReader r(buf);
  EXPECT_FALSE(EcpriHeader::parse(r).has_value());
}

CPlaneMsg sample_type1() {
  CPlaneMsg m;
  m.direction = Direction::Downlink;
  m.at = {17, 3, 1, 2};
  m.section_type = SectionType::Type1;
  m.comp = CompConfig{CompMethod::BlockFloatingPoint, 9};
  CSection s;
  s.section_id = 42;
  s.start_prb = 100;
  s.num_prb = 106;
  s.num_symbol = 14;
  s.re_mask = 0xfff;
  s.beam_id = 77;
  m.sections.push_back(s);
  s.section_id = 43;
  s.start_prb = 5;
  s.num_prb = 20;
  m.sections.push_back(s);
  return m;
}

TEST(CPlane, Type1RoundTrip) {
  const CPlaneMsg m = sample_type1();
  std::array<std::uint8_t, 256> buf{};
  BufWriter w(buf);
  ASSERT_TRUE(m.encode(w));
  BufReader r(std::span<const std::uint8_t>(buf.data(), w.written()));
  auto back = CPlaneMsg::parse(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
}

TEST(CPlane, Type3RoundTripWithNegativeFreqOffset) {
  CPlaneMsg m;
  m.direction = Direction::Uplink;
  m.filter_index = 1;
  m.at = {200, 9, 1, 0};
  m.section_type = SectionType::Type3;
  m.time_offset = 484;
  m.frame_structure = 0xb1;
  m.cp_length = 0;
  m.comp = CompConfig{CompMethod::BlockFloatingPoint, 9};
  CSection s;
  s.section_id = 2;
  s.num_prb = 12;
  s.num_symbol = 12;
  s.freq_offset = -3344;  // below-center windows are negative
  m.sections.push_back(s);
  s.section_id = 3;
  s.freq_offset = 0x7ffff0;  // large positive 24-bit value
  m.sections.push_back(s);

  std::array<std::uint8_t, 256> buf{};
  BufWriter w(buf);
  ASSERT_TRUE(m.encode(w));
  BufReader r(std::span<const std::uint8_t>(buf.data(), w.written()));
  auto back = CPlaneMsg::parse(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
}

TEST(CPlane, EffectivePrbsZeroMeansWholeCarrier) {
  CSection s;
  s.num_prb = 0;
  EXPECT_EQ(s.effective_prbs(273), 273);
  s.num_prb = 106;
  EXPECT_EQ(s.effective_prbs(273), 106);
}

std::vector<std::uint8_t> compressed_payload(int n_prb, const CompConfig& c,
                                             std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(-8000, 8000);
  std::vector<IqSample> samples(std::size_t(n_prb) * kScPerPrb);
  for (auto& s : samples) {
    s.i = std::int16_t(dist(rng));
    s.q = std::int16_t(dist(rng));
  }
  std::vector<std::uint8_t> out(c.prb_bytes() * std::size_t(n_prb));
  compress_prbs(IqConstSpan(samples.data(), samples.size()), c, out);
  return out;
}

TEST(Frame, UplaneBuildParseRoundTrip) {
  FhContext ctx = ctx273();
  EthHeader eth;
  eth.dst = MacAddr::ru(0);
  eth.src = MacAddr::du(0);
  auto payload = compressed_payload(50, ctx.comp, 1);

  UPlaneMsg hdr;
  hdr.direction = Direction::Downlink;
  hdr.at = {9, 5, 0, 7};
  USectionData sec;
  sec.section_id = 11;
  sec.start_prb = 60;
  sec.num_prb = 50;
  sec.payload = payload;

  std::vector<std::uint8_t> buf(9216);
  std::vector<USection> placed;
  const std::size_t len = build_uplane_frame(
      buf, eth, EaxcId{0, 0, 0, 2}, 5, hdr, std::span(&sec, 1), ctx, &placed);
  ASSERT_GT(len, 0u);
  buf.resize(len);
  ASSERT_EQ(placed.size(), 1u);

  auto frame = parse_frame(buf, ctx);
  ASSERT_TRUE(frame.has_value());
  ASSERT_TRUE(frame->is_uplane());
  EXPECT_EQ(frame->eth.dst, eth.dst);
  EXPECT_EQ(frame->ecpri.eaxc.ru_port, 2);
  EXPECT_EQ(frame->ecpri.seq_id, 5);
  const auto& u = frame->uplane();
  EXPECT_EQ(u.at, hdr.at);
  ASSERT_EQ(u.sections.size(), 1u);
  EXPECT_EQ(u.sections[0].start_prb, 60);
  EXPECT_EQ(u.sections[0].num_prb, 50);
  EXPECT_EQ(u.sections[0].payload_offset, placed[0].payload_offset);
  // Payload bytes visible through the parsed offsets equal the input.
  auto view = std::span<const std::uint8_t>(buf).subspan(
      u.sections[0].payload_offset, u.sections[0].payload_len);
  EXPECT_TRUE(std::equal(view.begin(), view.end(), payload.begin()));
}

TEST(Frame, WholeCarrierSectionUsesZeroShorthand) {
  FhContext ctx = ctx273();
  auto payload = compressed_payload(273, ctx.comp, 2);
  UPlaneMsg hdr;
  hdr.direction = Direction::Uplink;
  USectionData sec;
  sec.num_prb = 273;
  sec.payload = payload;
  std::vector<std::uint8_t> buf(9216);
  const std::size_t len =
      build_uplane_frame(buf, EthHeader{}, EaxcId{}, 0, hdr,
                         std::span(&sec, 1), ctx);
  ASSERT_GT(len, 0u);
  buf.resize(len);
  auto frame = parse_frame(buf, ctx);
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->uplane().sections.size(), 1u);
  EXPECT_EQ(frame->uplane().sections[0].num_prb, 273);
}

TEST(Frame, OversizeSectionSplitsAt255) {
  // 256..272-PRB sections are inexpressible in the 8-bit numPrbu and must
  // fragment (the regression behind first-D-slot losses).
  FhContext ctx = ctx273();
  auto payload = compressed_payload(261, ctx.comp, 3);
  UPlaneMsg hdr;
  hdr.direction = Direction::Downlink;
  USectionData sec;
  sec.start_prb = 0;
  sec.num_prb = 261;
  sec.payload = payload;
  std::vector<std::uint8_t> buf(9216);
  const std::size_t len =
      build_uplane_frame(buf, EthHeader{}, EaxcId{}, 0, hdr,
                         std::span(&sec, 1), ctx);
  ASSERT_GT(len, 0u);
  buf.resize(len);
  auto frame = parse_frame(buf, ctx);
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->uplane().sections.size(), 2u);
  EXPECT_EQ(frame->uplane().sections[0].num_prb, 255);
  EXPECT_EQ(frame->uplane().sections[1].num_prb, 6);
  EXPECT_EQ(frame->uplane().sections[1].start_prb, 255);
}

TEST(Frame, CplaneBuildParseRoundTrip) {
  FhContext ctx = ctx273();
  const CPlaneMsg m = sample_type1();
  std::vector<std::uint8_t> buf(512);
  const std::size_t len = build_cplane_frame(
      buf, EthHeader{}, EaxcId{0, 0, 0, 1}, 17, m, ctx);
  ASSERT_GT(len, 0u);
  buf.resize(len);
  auto frame = parse_frame(buf, ctx);
  ASSERT_TRUE(frame.has_value());
  ASSERT_TRUE(frame->is_cplane());
  EXPECT_EQ(frame->cplane(), m);
  EXPECT_EQ(frame->ecpri.seq_id, 17);
}

TEST(Frame, RewriteEthAddrsInPlace) {
  FhContext ctx = ctx273();
  std::vector<std::uint8_t> buf(512);
  const std::size_t len = build_cplane_frame(buf, EthHeader{}, EaxcId{}, 0,
                                             sample_type1(), ctx);
  buf.resize(len);
  ASSERT_TRUE(rewrite_eth_addrs(buf, MacAddr::ru(9), MacAddr::mb(1)));
  auto frame = parse_frame(buf, ctx);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->eth.dst, MacAddr::ru(9));
  EXPECT_EQ(frame->eth.src, MacAddr::mb(1));
}

TEST(Frame, RewriteEaxcInPlace) {
  FhContext ctx = ctx273();
  std::vector<std::uint8_t> buf(512);
  const std::size_t len = build_cplane_frame(buf, EthHeader{}, EaxcId{}, 0,
                                             sample_type1(), ctx);
  buf.resize(len);
  ASSERT_TRUE(rewrite_eaxc(buf, EaxcId{0, 0, 0, 3}));
  auto frame = parse_frame(buf, ctx);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->ecpri.eaxc.ru_port, 3);
  // The rest of the message is untouched.
  EXPECT_EQ(frame->cplane(), sample_type1());
}

TEST(Frame, RejectsNonEcpriEthertype) {
  std::vector<std::uint8_t> buf(64, 0);
  buf[12] = 0x08;  // IPv4
  buf[13] = 0x00;
  EXPECT_FALSE(parse_frame(buf, ctx273()).has_value());
}

/// Property: no prefix truncation of a valid frame crashes the parser,
/// and almost all truncations are rejected.
TEST(Frame, TruncationFuzz) {
  FhContext ctx = ctx273();
  auto payload = compressed_payload(40, ctx.comp, 4);
  UPlaneMsg hdr;
  hdr.direction = Direction::Downlink;
  USectionData sec;
  sec.num_prb = 40;
  sec.payload = payload;
  std::vector<std::uint8_t> buf(9216);
  const std::size_t len = build_uplane_frame(
      buf, EthHeader{}, EaxcId{}, 0, hdr, std::span(&sec, 1), ctx);
  buf.resize(len);
  for (std::size_t cut = 0; cut < len; ++cut) {
    auto r = parse_frame(std::span<const std::uint8_t>(buf.data(), cut), ctx);
    EXPECT_FALSE(r.has_value()) << "accepted truncation at " << cut;
  }
}

/// Every rejected truncation reports a typed reason, and the reason
/// matches the layer the cut landed in.
TEST(Frame, TruncationSetsTypedReason) {
  FhContext ctx = ctx273();
  auto payload = compressed_payload(40, ctx.comp, 4);
  UPlaneMsg hdr;
  hdr.direction = Direction::Downlink;
  USectionData sec;
  sec.num_prb = 40;
  sec.payload = payload;
  std::vector<std::uint8_t> buf(9216);
  const std::size_t len = build_uplane_frame(
      buf, EthHeader{}, EaxcId{}, 0, hdr, std::span(&sec, 1), ctx);
  buf.resize(len);
  for (std::size_t cut = 0; cut < len; ++cut) {
    ParseError err = ParseError::None;
    auto r = parse_frame(std::span<const std::uint8_t>(buf.data(), cut), ctx,
                         &err);
    ASSERT_FALSE(r.has_value()) << "accepted truncation at " << cut;
    EXPECT_NE(err, ParseError::None) << "untyped rejection at " << cut;
    EXPECT_NE(parse_error_name(err), nullptr);
    if (cut < 14) EXPECT_EQ(err, ParseError::TruncatedEth) << "at " << cut;
  }
}

TEST(Frame, UnknownEcpriTypeSetsTypedReason) {
  FhContext ctx = ctx273();
  auto payload = compressed_payload(10, ctx.comp, 2);
  UPlaneMsg hdr;
  USectionData sec;
  sec.num_prb = 10;
  sec.payload = payload;
  std::vector<std::uint8_t> buf(9216);
  const std::size_t len = build_uplane_frame(
      buf, EthHeader{}, EaxcId{}, 0, hdr, std::span(&sec, 1), ctx);
  buf.resize(len);
  // eCPRI starts after the 18-byte VLAN-tagged Ethernet header.
  buf[19] = 0x7f;  // eCPRI message type, right after the version byte
  ParseError err = ParseError::None;
  EXPECT_FALSE(parse_frame(buf, ctx, &err).has_value());
  EXPECT_EQ(err, ParseError::UnknownEcpriType);

  buf[18] = 0x40;  // bogus eCPRI version nibble
  err = ParseError::None;
  EXPECT_FALSE(parse_frame(buf, ctx, &err).has_value());
  EXPECT_EQ(err, ParseError::BadEcpriVersion);
}

TEST(Frame, SectionBeyondCarrierGridRejected) {
  FhContext ctx = ctx273();
  auto payload = compressed_payload(40, ctx.comp, 3);
  UPlaneMsg hdr;
  hdr.direction = Direction::Uplink;
  USectionData sec;
  sec.start_prb = 260;  // 260 + 40 > 273: off the carrier grid
  sec.num_prb = 40;
  sec.payload = payload;
  std::vector<std::uint8_t> buf(9216);
  const std::size_t len = build_uplane_frame(
      buf, EthHeader{}, EaxcId{}, 0, hdr, std::span(&sec, 1), ctx);
  ASSERT_GT(len, 0u);
  buf.resize(len);
  ParseError err = ParseError::None;
  EXPECT_FALSE(parse_frame(buf, ctx, &err).has_value());
  EXPECT_EQ(err, ParseError::BadSectionGeometry);
}

/// Property: a random bit flip either still parses or reports a typed
/// reason - never an untyped rejection, never a crash or overread.
TEST(Frame, ByteFlipFuzzAlwaysTypesRejections) {
  FhContext ctx = ctx273();
  auto payload = compressed_payload(10, ctx.comp, 5);
  UPlaneMsg hdr;
  USectionData sec;
  sec.num_prb = 10;
  sec.payload = payload;
  std::vector<std::uint8_t> buf(9216);
  const std::size_t len = build_uplane_frame(
      buf, EthHeader{}, EaxcId{}, 0, hdr, std::span(&sec, 1), ctx);
  buf.resize(len);
  std::mt19937 rng(7);
  int rejected = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    auto copy = buf;
    copy[rng() % copy.size()] ^= std::uint8_t(1u << (rng() % 8));
    ParseError err = ParseError::None;
    auto r = parse_frame(copy, ctx, &err);
    if (!r.has_value()) {
      ++rejected;
      EXPECT_NE(err, ParseError::None);
      EXPECT_LT(std::size_t(err), std::size_t(ParseError::kCount));
    }
  }
  EXPECT_GT(rejected, 0);  // flips in length/type fields do get caught
}

TEST(Frame, MixedWidthSectionsRoundTripPerPacketCompHdr) {
  // ISSUE 6 satellite: a frame can carry sections at different BFP widths
  // (one link running controller-degraded width 7 next to a nominal-width
  // section). Each section's udCompHdr and payload sizing must follow its
  // own override, and the parser must recover both widths per section.
  FhContext ctx = ctx273();
  ASSERT_EQ(ctx.comp.iq_width, 9);
  CompConfig narrow;
  narrow.iq_width = 7;
  auto pay9 = compressed_payload(40, ctx.comp, 6);
  auto pay7 = compressed_payload(40, narrow, 7);
  ASSERT_LT(pay7.size(), pay9.size());

  UPlaneMsg hdr;
  hdr.direction = Direction::Uplink;
  hdr.at = {3, 1, 0, 4};
  std::vector<USectionData> secs(2);
  secs[0].section_id = 1;
  secs[0].start_prb = 0;
  secs[0].num_prb = 40;
  secs[0].payload = pay9;  // comp unset: context default (width 9)
  secs[1].section_id = 2;
  secs[1].start_prb = 40;
  secs[1].num_prb = 40;
  secs[1].payload = pay7;
  secs[1].comp = narrow;  // per-packet override (width 7)

  std::vector<std::uint8_t> buf(9216);
  std::vector<USection> placed;
  const std::size_t len = build_uplane_frame(buf, EthHeader{}, EaxcId{}, 0,
                                             hdr, secs, ctx, &placed);
  ASSERT_GT(len, 0u);
  buf.resize(len);
  ASSERT_EQ(placed.size(), 2u);
  EXPECT_EQ(placed[0].comp.iq_width, 9);
  EXPECT_EQ(placed[1].comp.iq_width, 7);

  auto frame = parse_frame(buf, ctx);
  ASSERT_TRUE(frame.has_value());
  const auto& u = frame->uplane();
  ASSERT_EQ(u.sections.size(), 2u);
  EXPECT_EQ(u.sections[0].comp.iq_width, 9);
  EXPECT_EQ(u.sections[1].comp.iq_width, 7);
  EXPECT_EQ(u.sections[0].payload_len, 40 * ctx.comp.prb_bytes());
  EXPECT_EQ(u.sections[1].payload_len, 40 * narrow.prb_bytes());
  auto view7 = std::span<const std::uint8_t>(buf).subspan(
      u.sections[1].payload_offset, u.sections[1].payload_len);
  EXPECT_TRUE(std::equal(view7.begin(), view7.end(), pay7.begin()));
}

TEST(Frame, MtuSplitHonorsPerSectionWidth) {
  // Fragmentation budgets must use each section's own width: a width-16
  // whole-carrier section overflows a jumbo frame and splits, while the
  // same PRB count at width 7 fits in one fragment.
  FhContext ctx = ctx273();
  CompConfig wide;
  wide.iq_width = 16;
  auto pay_wide = compressed_payload(273, wide, 8);
  USectionData sec;
  sec.num_prb = 273;
  sec.payload = pay_wide;
  sec.comp = wide;
  const auto frags = split_sections_for_mtu(std::span(&sec, 1), ctx);
  EXPECT_GT(frags.size(), 1u);
  std::size_t total_prbs = 0;
  for (const auto& f : frags)
    for (const auto& s : f) {
      EXPECT_TRUE(s.comp.has_value());
      EXPECT_EQ(s.comp->iq_width, 16);
      total_prbs += std::size_t(s.num_prb);
    }
  EXPECT_EQ(total_prbs, 273u);

  CompConfig narrow;
  narrow.iq_width = 7;
  auto pay_narrow = compressed_payload(273, narrow, 9);
  sec.payload = pay_narrow;
  sec.comp = narrow;
  EXPECT_EQ(split_sections_for_mtu(std::span(&sec, 1), ctx).size(), 1u);
}

TEST(Frame, ByteFlipFuzzDoesNotCrash) {
  FhContext ctx = ctx273();
  auto payload = compressed_payload(10, ctx.comp, 5);
  UPlaneMsg hdr;
  USectionData sec;
  sec.num_prb = 10;
  sec.payload = payload;
  std::vector<std::uint8_t> buf(9216);
  const std::size_t len = build_uplane_frame(
      buf, EthHeader{}, EaxcId{}, 0, hdr, std::span(&sec, 1), ctx);
  buf.resize(len);
  std::mt19937 rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    auto copy = buf;
    copy[rng() % copy.size()] ^= std::uint8_t(1u << (rng() % 8));
    (void)parse_frame(copy, ctx);  // must not crash or overread
  }
}

}  // namespace
}  // namespace rb
