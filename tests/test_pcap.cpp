// Tests for the pcap capture facility and the port tap.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "fronthaul/pcap.h"
#include "net/port.h"

namespace rb {
namespace {

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(f), {});
}

struct TempFile {
  std::string path;
  TempFile() {
    char buf[] = "/tmp/rb_pcap_XXXXXX";
    const int fd = mkstemp(buf);
    if (fd >= 0) close(fd);
    path = buf;
  }
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(Pcap, WritesValidGlobalHeader) {
  TempFile tmp;
  {
    PcapWriter w(tmp.path);
    ASSERT_TRUE(w.ok());
  }
  const auto bytes = slurp(tmp.path);
  ASSERT_GE(bytes.size(), 24u);
  // Magic 0xa1b2c3d4 (host endian; little-endian on this platform).
  EXPECT_EQ(bytes[0], 0xd4);
  EXPECT_EQ(bytes[1], 0xc3);
  EXPECT_EQ(bytes[2], 0xb2);
  EXPECT_EQ(bytes[3], 0xa1);
  // Linktype Ethernet = 1 at offset 20.
  EXPECT_EQ(bytes[20], 1);
}

TEST(Pcap, RecordCarriesFrameAndTimestamp) {
  TempFile tmp;
  const std::vector<std::uint8_t> frame{0xde, 0xad, 0xbe, 0xef, 0x01};
  {
    PcapWriter w(tmp.path);
    w.write(frame, 3'000'002'000);  // 3s + 2us
    EXPECT_EQ(w.frames_written(), 1u);
  }
  const auto bytes = slurp(tmp.path);
  ASSERT_EQ(bytes.size(), 24u + 16u + frame.size());
  // ts_sec = 3, ts_usec = 2, incl_len = orig_len = 5.
  EXPECT_EQ(bytes[24], 3);
  EXPECT_EQ(bytes[28], 2);
  EXPECT_EQ(bytes[32], 5);
  EXPECT_EQ(bytes[36], 5);
  EXPECT_TRUE(std::equal(frame.begin(), frame.end(), bytes.begin() + 40));
}

TEST(Pcap, PortTapCapturesTraffic) {
  TempFile tmp;
  PacketPool pool(4);
  Port a("a"), b("b");
  Port::connect(a, b, 0);
  PcapWriter w(tmp.path);
  b.set_tap([&](const Packet& p) { w.write(p.data(), p.rx_time_ns); });
  for (int i = 0; i < 3; ++i) {
    auto p = pool.alloc();
    p->raw()[0] = std::uint8_t(i);
    p->set_len(60);
    p->rx_time_ns = i * 1'000;
    a.send(std::move(p));
  }
  EXPECT_EQ(w.frames_written(), 3u);
  w.flush();
  EXPECT_EQ(slurp(tmp.path).size(), 24u + 3 * (16u + 60u));
}

TEST(Pcap, UnwritablePathReportsNotOk) {
  PcapWriter w("/nonexistent-dir/x.pcap");
  EXPECT_FALSE(w.ok());
  w.write(std::vector<std::uint8_t>{1, 2, 3}, 0);  // must not crash
  EXPECT_EQ(w.frames_written(), 0u);
}

}  // namespace
}  // namespace rb
