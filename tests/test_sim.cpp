// Unit tests for the scenario harness: floorplan geometry, traffic
// generation, power and cost models, vendor profiles.
#include <gtest/gtest.h>

#include "ran/vendor.h"
#include "sim/cost.h"
#include "sim/deployment.h"
#include "sim/power.h"

namespace rb {
namespace {

TEST(Floorplan, RuPlacementInsideFloor) {
  Floorplan fp;
  for (int f = 0; f < fp.floors; ++f) {
    for (int i = 0; i < fp.rus_per_floor; ++i) {
      const Position p = fp.ru_position(f, i);
      EXPECT_GT(p.x, 0.0);
      EXPECT_LT(p.x, fp.width_m);
      EXPECT_DOUBLE_EQ(p.y, fp.depth_m / 2.0);
      EXPECT_EQ(p.floor, f);
    }
  }
  // Adjacent RUs are evenly spaced.
  const double d1 = fp.ru_position(0, 1).x - fp.ru_position(0, 0).x;
  const double d2 = fp.ru_position(0, 2).x - fp.ru_position(0, 1).x;
  EXPECT_DOUBLE_EQ(d1, d2);
}

TEST(Floorplan, NearRuClampsToFloor) {
  Floorplan fp;
  const Position p = fp.near_ru(0, 0, -100.0);
  EXPECT_GE(p.x, 0.5);
  const Position q = fp.near_ru(0, 3, +100.0);
  EXPECT_LE(q.x, fp.width_m - 0.5);
}

TEST(Floorplan, WalkRouteCoversTheFloor) {
  Floorplan fp;
  const auto route = fp.walk_route(2, 10, 3);
  EXPECT_EQ(route.size(), 30u);
  double min_x = 1e9, max_x = 0;
  for (const auto& p : route) {
    EXPECT_EQ(p.floor, 2);
    EXPECT_GT(p.x, 0.0);
    EXPECT_LT(p.x, fp.width_m);
    EXPECT_GT(p.y, 0.0);
    EXPECT_LT(p.y, fp.depth_m);
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
  }
  EXPECT_LT(min_x, fp.width_m * 0.2);
  EXPECT_GT(max_x, fp.width_m * 0.8);
  // Serpentine: consecutive points are adjacent (no teleporting).
  for (std::size_t i = 1; i < route.size(); ++i) {
    const double dx = std::abs(route[i].x - route[i - 1].x);
    const double dy = std::abs(route[i].y - route[i - 1].y);
    EXPECT_LT(dx + dy, fp.width_m / 10.0 + fp.depth_m / 3.0 + 0.01);
  }
}

TEST(Traffic, InjectsOfferedBitsPerSlot) {
  Deployment d;
  CellConfig c;
  c.bandwidth = MHz(40);
  auto du = d.add_du(c, srsran_profile(), 0);
  const UeId ue = d.air.add_ue({});
  d.traffic.set_flow(*du.du, ue, 100.0, 10.0);  // 100 Mbps DL
  for (int i = 0; i < 10; ++i) d.traffic.on_slot(i);
  // 100 Mbps * 10 slots * 0.5 ms = 500'000 bits.
  EXPECT_NEAR(double(du.du->scheduler().dl_backlog(ue)), 500'000.0, 10.0);
  EXPECT_NEAR(double(du.du->scheduler().ul_backlog(ue)), 50'000.0, 10.0);
}

TEST(Traffic, ReplaceFlowInsteadOfDuplicating) {
  Deployment d;
  CellConfig c;
  c.bandwidth = MHz(40);
  auto du = d.add_du(c, srsran_profile(), 0);
  const UeId ue = d.air.add_ue({});
  d.traffic.set_flow(*du.du, ue, 100.0, 0.0);
  d.traffic.set_flow(*du.du, ue, 10.0, 0.0);  // replaces, not adds
  d.traffic.on_slot(0);
  EXPECT_NEAR(double(du.du->scheduler().dl_backlog(ue)), 5'000.0, 2.0);
}

TEST(Traffic, FractionalRatesAccumulate) {
  Deployment d;
  CellConfig c;
  c.bandwidth = MHz(40);
  auto du = d.add_du(c, srsran_profile(), 0);
  const UeId ue = d.air.add_ue({});
  d.traffic.set_flow(*du.du, ue, 0.001, 0.0);  // 0.5 bit per slot
  for (int i = 0; i < 100; ++i) d.traffic.on_slot(i);
  EXPECT_NEAR(double(du.du->scheduler().dl_backlog(ue)), 50.0, 2.0);
}

TEST(Power, Figure14Anchors) {
  PowerModel pm;
  // (a): 5 cells + 5 middleboxes on two servers.
  const int cores_a =
      5 * PowerModel::kCoresPerCell + 5 * PowerModel::kCoresPerMiddlebox;
  const double a = pm.server_power_w(pm.cores_per_server) +
                   pm.server_power_w(cores_a - pm.cores_per_server);
  EXPECT_NEAR(a, 400.0, 20.0);
  // (b): one cell + 6 middleboxes, half the idle cores down-clocked.
  const int cores_b =
      PowerModel::kCoresPerCell + 6 * PowerModel::kCoresPerMiddlebox;
  const double b =
      pm.server_power_w(cores_b, (pm.cores_per_server - cores_b) / 2);
  EXPECT_NEAR(b, 180.0, 15.0);
  EXPECT_LT(b, a * 0.5);
}

TEST(Cost, AppendixA2Anchors) {
  CostModel cm;
  EXPECT_NEAR(cm.ranbooster_bom_usd(), 60'000.0, 2'000.0);
  const double sqft = 15'403.0 * 5;  // the paper's priced area
  EXPECT_NEAR(cm.conventional_das_usd(sqft), 154'030.0, 1.0);
  EXPECT_NEAR(cm.savings_pct(sqft), 41.0, 2.0);
}

TEST(Vendor, ProfilesDifferWhereThePaperSaysSo) {
  const auto s = srsran_profile();
  const auto c = capgemini_profile();
  const auto r = radisys_profile();
  EXPECT_NE(s.tdd.str(), c.tdd.str());
  EXPECT_NE(s.tdd.str(), r.tdd.str());
  EXPECT_TRUE(c.cplane_per_symbol);
  EXPECT_FALSE(s.cplane_per_symbol);
  EXPECT_EQ(r.iq_width, 14);
  EXPECT_FALSE(r.uplane_has_comp_hdr);
}

TEST(Deployment, PrbOffsetInRuMatchesAlignmentFormula) {
  CellConfig du_cell;
  du_cell.bandwidth = MHz(40);
  RuSite ru;
  ru.bandwidth = MHz(100);
  ru.center_freq = GHz(3) + MHz(460);
  du_cell.center_freq =
      aligned_du_center_frequency(ru.center_freq, 273, 106, 42, Scs::kHz30);
  EXPECT_EQ(Deployment::prb_offset_in_ru(du_cell, ru), 42);
}

}  // namespace
}  // namespace rb
