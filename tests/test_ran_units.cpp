// Unit tests for the RAN substrate pieces with closed-form behaviour:
// units/PRB tables, slot clock, TDD patterns, channel model, rate model,
// PTP, and the Appendix A.1 frequency formulas.
#include <gtest/gtest.h>

#include <cmath>

#include "common/timing.h"
#include "ran/cell_config.h"
#include "ran/channel.h"
#include "ran/phy_rate.h"
#include "ran/ptp.h"
#include "ran/tdd.h"

namespace rb {
namespace {

TEST(Units, PrbTableMatches3gpp) {
  EXPECT_EQ(prbs_for_bandwidth(MHz(100), Scs::kHz30), 273);
  EXPECT_EQ(prbs_for_bandwidth(MHz(40), Scs::kHz30), 106);  // Figure 2
  EXPECT_EQ(prbs_for_bandwidth(MHz(25), Scs::kHz30), 65);
  EXPECT_EQ(prbs_for_bandwidth(MHz(20), Scs::kHz15), 106);
  EXPECT_EQ(prbs_for_bandwidth(MHz(3), Scs::kHz30), 0);  // unsupported
}

TEST(Units, SymbolDurationMatchesPaper) {
  // Paper: "33.3 us for a typical cell configuration" ~ 500us/14 = 35.7us.
  EXPECT_EQ(slot_duration_ns(Scs::kHz30), 500'000);
  EXPECT_NEAR(double(symbol_duration_ns(Scs::kHz30)), 35'714.0, 1.0);
  EXPECT_EQ(slot_duration_ns(Scs::kHz15), 1'000'000);
}

TEST(SlotClock, WrapsLikeTheWireFormat) {
  SlotClock clk(Scs::kHz30);
  EXPECT_EQ(clk.now(), (SlotPoint{0, 0, 0, 0}));
  for (int i = 0; i < 14; ++i) clk.advance_symbol();
  EXPECT_EQ(clk.now(), (SlotPoint{0, 0, 1, 0}));
  clk.advance_slot();
  EXPECT_EQ(clk.now(), (SlotPoint{0, 1, 0, 0}));
  // Frame wraps at 256 (8-bit frameId).
  SlotClock clk2(Scs::kHz30);
  for (int i = 0; i < 256 * 10 * 2; ++i) clk2.advance_slot();
  EXPECT_EQ(clk2.now().frame, 0);
  EXPECT_EQ(clk2.total_slots(), 5120);
}

TEST(SlotClock, ElapsedTracksSlots) {
  SlotClock clk(Scs::kHz30);
  clk.advance_slot();
  clk.advance_slot();
  EXPECT_EQ(clk.elapsed_ns(), 1'000'000);
}

TEST(Tdd, FromStringAndSymbols) {
  const TddPattern p = TddPattern::from_string("DDDSU");
  EXPECT_EQ(p.str(), "DDDSU");
  EXPECT_EQ(p.dl_symbols(0), 14);
  EXPECT_EQ(p.dl_symbols(3), 10);  // special
  EXPECT_EQ(p.dl_symbols(4), 0);
  EXPECT_EQ(p.ul_symbols(4), 14);
  EXPECT_EQ(p.ul_symbols(3), 2);
  EXPECT_TRUE(p.is_dl(5));  // wraps
  EXPECT_TRUE(p.is_ul(9));
}

TEST(Tdd, FractionsSumBelowOne) {
  for (const char* s : {"DDDSU", "DDDDDDDSUU", "DDDSUUDDDD", "DSU"}) {
    const TddPattern p = TddPattern::from_string(s);
    EXPECT_GT(p.dl_symbol_fraction(), 0.0) << s;
    EXPECT_GT(p.ul_symbol_fraction(), 0.0) << s;
    EXPECT_LT(p.dl_symbol_fraction() + p.ul_symbol_fraction(), 1.01) << s;
  }
}

TEST(Tdd, SymbolsPerSecond) {
  const TddPattern p = TddPattern::from_string("DDDSU");
  // 2000 slots/s * (3*14+10)/(5*14) symbols DL.
  EXPECT_NEAR(p.dl_symbols_per_second(Scs::kHz30), 2000.0 * 52.0 / 5.0, 1.0);
}

TEST(Channel, PathLossMonotoneInDistance) {
  ChannelModel ch;
  const Position ru{10, 10, 0};
  double last = 1e9;
  for (double d : {2.0, 5.0, 10.0, 20.0, 40.0}) {
    const double snr = ch.dl_snr_db(ru, Position{10 + d, 10, 0}, 1);
    EXPECT_LT(snr, last);
    last = snr;
  }
}

TEST(Channel, ReferenceSnrAtFiveMeters) {
  ChannelParams p;
  p.shadowing_sigma_db = 0.0;
  ChannelModel ch(p);
  EXPECT_NEAR(ch.dl_snr_db({0, 0, 0}, {5, 0, 0}), p.dl_ref_snr_db, 1e-9);
  EXPECT_NEAR(ch.ul_snr_db({0, 0, 0}, {5, 0, 0}), p.ul_ref_snr_db, 1e-9);
}

TEST(Channel, FloorPenetrationDominates) {
  ChannelParams p;
  p.shadowing_sigma_db = 0.0;
  ChannelModel ch(p);
  const double same = ch.dl_snr_db({10, 10, 0}, {14, 10, 0});
  const double above = ch.dl_snr_db({10, 10, 0}, {14, 10, 1});
  EXPECT_NEAR(same - above, p.floor_loss_db +
                  10.0 * p.pathloss_exponent *
                      std::log10(ch.distance_m({10, 10, 0}, {14, 10, 1}) /
                                 ch.distance_m({10, 10, 0}, {14, 10, 0})),
              0.01);
  // A UE one floor up cannot attach (paper 6.2.1 baseline).
  EXPECT_LT(above, 0.0);
}

TEST(Channel, ShadowingDeterministicPerSeed) {
  ChannelModel ch;
  const double a = ch.rel_gain_db({0, 0, 0}, {9, 0, 0}, 42);
  EXPECT_DOUBLE_EQ(a, ch.rel_gain_db({0, 0, 0}, {9, 0, 0}, 42));
  EXPECT_NE(a, ch.rel_gain_db({0, 0, 0}, {9, 0, 0}, 43));
}

TEST(PhyRate, SpectralEfficiencyShape) {
  EXPECT_DOUBLE_EQ(spectral_efficiency(-10.0, 2), 0.0);  // below QPSK edge
  EXPECT_GT(spectral_efficiency(5.0, 2), spectral_efficiency(0.0, 2));
  // Ceilings: rank 1 saturates at the SISO transport cap.
  EXPECT_NEAR(spectral_efficiency(40.0, 2), 7.4, 1e-9);
  EXPECT_NEAR(spectral_efficiency(40.0, 1), 4.0, 1e-9);
}

TEST(PhyRate, MimoPenaltyMonotone) {
  EXPECT_DOUBLE_EQ(mimo_layer_penalty_db(1), 0.0);
  EXPECT_LT(mimo_layer_penalty_db(2), mimo_layer_penalty_db(3));
  EXPECT_LT(mimo_layer_penalty_db(3), mimo_layer_penalty_db(4));
}

TEST(PhyRate, CalibrationAnchorsTable2) {
  // 26 dB single-antenna SNR at 5 m; DDDSU supplies 19200 DL data
  // symbols/s. These are the closed-form versions of the e2e anchors.
  const TddPattern tdd = TddPattern::from_string("DDDSU");
  const double dl_data_sym_s = 400.0 * (3 * 13 + 9);
  auto mbps = [&](int ants, int layers) {
    const double s_total = 26.0 + 10.0 * std::log10(double(ants));
    const double per_layer = s_total - mimo_layer_penalty_db(layers);
    return spectral_efficiency(per_layer, layers) * layers * 273 * 12 *
           dl_data_sym_s / 1e6;
  };
  EXPECT_NEAR(mbps(2, 2), 653.4, 653.4 * 0.05);
  EXPECT_NEAR(mbps(4, 4), 898.2, 898.2 * 0.05);
  (void)tdd;
}

TEST(PhyRate, QuantizeToHalfDb) {
  EXPECT_DOUBLE_EQ(quantize_sinr_db(13.26), 13.5);
  EXPECT_DOUBLE_EQ(quantize_sinr_db(13.24), 13.0);
  EXPECT_DOUBLE_EQ(quantize_sinr_db(-4.8), -5.0);
}

TEST(Ptp, NodesLockWithinBound) {
  PtpGrandmaster gm(60);
  gm.add_node("du0");
  gm.add_node("ru0");
  gm.add_node("ru1");
  EXPECT_TRUE(gm.locked("du0"));
  EXPECT_TRUE(gm.locked("ru0"));
  EXPECT_LE(gm.max_pairwise_offset_ns(), 60);
}

TEST(Ptp, HoldoverDriftUnlocks) {
  PtpGrandmaster gm(60);
  gm.add_node("ru0");
  gm.set_offset_ns("ru0", 5'000);  // GPS loss / holdover drift
  EXPECT_FALSE(gm.locked("ru0"));
  EXPECT_FALSE(gm.locked("never-added"));
}

TEST(CellConfig, GridGeometry) {
  CellConfig c;
  c.bandwidth = MHz(100);
  c.center_freq = GHz(3) + MHz(460);
  c.finalize();
  EXPECT_EQ(c.n_prb(), 273);
  // prb0 is half the transmission bandwidth below center.
  EXPECT_EQ(c.prb0_freq(), c.center_freq - 12 * 30'000 * 273 / 2);
  EXPECT_EQ(c.prb_freq(0), c.prb0_freq());
  // SSB centered.
  EXPECT_EQ(c.ssb.start_prb, 273 / 2 - 10);
}

TEST(AppendixA11, AlignedCenterFrequencyFormula) {
  // A DU centered with the formula has prb0 exactly on an RU PRB edge.
  const Hertz ru_center = GHz(3) + MHz(460);
  for (int offset : {0, 10, 83, 150, 167}) {
    const Hertz duc =
        aligned_du_center_frequency(ru_center, 273, 106, offset, Scs::kHz30);
    CellConfig du;
    du.bandwidth = MHz(40);
    du.center_freq = duc;
    const Hertz ru_prb0 = ru_center - 12 * 30'000 * 273 / 2;
    const Hertz delta = du.prb0_freq() - ru_prb0;
    EXPECT_EQ(delta % (12 * 30'000), 0) << "offset " << offset;
    EXPECT_EQ(delta / (12 * 30'000), offset);
  }
}

TEST(AppendixA12, FreqOffsetTranslation) {
  // Translating a PRACH window between grids must preserve its absolute
  // frequency (eq. 11).
  const Hertz ru_center = GHz(3) + MHz(460);
  const Hertz du_center =
      aligned_du_center_frequency(ru_center, 273, 106, 10, Scs::kHz30);
  CellConfig du;
  du.bandwidth = MHz(40);
  du.center_freq = du_center;
  du.finalize();
  const std::int32_t fo_ru = translate_freq_offset(
      du.prach.freq_offset, du_center, ru_center, Scs::kHz30);
  const Hertz abs_from_du = du.prach_f0();
  const Hertz abs_from_ru = ru_center - fo_ru * 30'000 / 2;
  EXPECT_EQ(abs_from_du, abs_from_ru);
}

TEST(AppendixA12, TranslationIsInvertible) {
  const Hertz a = GHz(3) + MHz(430), b = GHz(3) + MHz(460);
  const std::int32_t fo = 1234;
  EXPECT_EQ(translate_freq_offset(translate_freq_offset(fo, a, b, Scs::kHz30),
                                  b, a, Scs::kHz30),
            fo);
}

}  // namespace
}  // namespace rb
