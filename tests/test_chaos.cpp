// Seeded chaos soak: every middlebox deployment runs for thousands of
// slots under mixed fronthaul faults (loss, bursts, jitter, reordering,
// duplication, corruption, flaps) and must neither crash nor stall, keep
// carrying traffic, and replay bit-identically for the same seed under
// both serial and parallel execution.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/deployment.h"

namespace rb {
namespace {

CellConfig cell100() {
  CellConfig c;
  c.bandwidth = MHz(100);
  c.max_layers = 4;
  c.pci = 1;
  return c;
}

/// DAS cell over three floors with one loaded UE per floor.
struct ChaosDasRig {
  Deployment d;
  Deployment::DuHandle du;
  std::vector<Deployment::RuHandle> rus;
  MiddleboxRuntime* rt = nullptr;
  std::vector<UeId> ues;

  explicit ChaosDasRig(const exec::ExecPolicy& policy = {}) {
    d.engine.set_exec_policy(policy);
    du = d.add_du(cell100(), srsran_profile(), 0);
    std::vector<Deployment::RuHandle*> ptrs;
    for (int f = 0; f < 3; ++f) {
      RuSite site;
      site.pos = d.plan.ru_position(f, 1);
      site.n_antennas = 4;
      site.bandwidth = MHz(100);
      site.center_freq = du.du->config().cell.center_freq;
      rus.push_back(d.add_ru(site, std::uint8_t(f), du.du->fh()));
    }
    for (auto& r : rus) ptrs.push_back(&r);
    rt = &d.add_das(du, ptrs, DriverKind::Dpdk, 2);
    for (int f = 0; f < 3; ++f)
      ues.push_back(d.add_ue(d.plan.near_ru(f, 1, 5.0), &du, 150.0, 15.0));
  }

  /// Mixed fault cocktail, all streams derived from one seed.
  void add_chaos(std::uint64_t seed) {
    FaultPlan ul0;  // floor 0 uplink: light i.i.d. loss + jitter
    ul0.loss = 0.01;
    ul0.jitter_ns = 20000;
    ul0.seed = seed ^ 0xa1;
    FaultPlan dl0;  // floor 0 downlink: fixed extra latency
    dl0.delay_ns = 10000;
    dl0.seed = seed ^ 0xa2;
    d.add_fault(*rus[0].port, ul0, dl0);

    FaultPlan ul1;  // floor 1 uplink: bursty loss + reordering
    ul1.ge_enter_bad = 0.004;
    ul1.ge_exit_bad = 0.25;
    ul1.ge_loss_bad = 0.5;
    ul1.reorder = 0.01;
    ul1.seed = seed ^ 0xb1;
    FaultPlan dl1;  // floor 1 downlink: duplication + bit corruption
    dl1.duplicate = 0.02;
    dl1.corrupt = 0.01;
    dl1.seed = seed ^ 0xb2;
    d.add_fault(*rus[1].port, ul1, dl1);
  }
};

/// Byte-exact fingerprint of a run: every runtime counter, every fault
/// counter and every UE's cumulative air-interface bit count.
std::string snapshot(Deployment& d, const std::vector<UeId>& ues) {
  std::ostringstream os;
  for (const auto& rt : d.runtimes)
    for (const auto& [k, v] : rt->telemetry().counters())
      os << k << "=" << v << "\n";
  os << d.fault_dump();
  for (UeId ue : ues)
    os << "ue" << ue << " dl=" << d.air.dl_bits(ue)
       << " ul=" << d.air.ul_bits(ue) << "\n";
  return os.str();
}

std::string run_das_chaos(std::uint64_t seed, const exec::ExecPolicy& policy,
                          int slots) {
  ChaosDasRig rig(policy);
  EXPECT_TRUE(rig.d.attach_all(600));
  rig.add_chaos(seed);
  rig.d.engine.run_slots(slots);
  return snapshot(rig.d, rig.ues);
}

TEST(ChaosDas, SoakSurvivesMixedFaults) {
  ChaosDasRig rig;
  ASSERT_TRUE(rig.d.attach_all(600));
  rig.add_chaos(0xdead5eed);
  const int slots = 2000;
  rig.d.engine.run_slots(slots);

  // Faults really fired...
  const auto& f0 = rig.d.faults[0]->stats_ab();
  const auto& f1 = rig.d.faults[1]->stats_ab();
  EXPECT_GT(f0.iid_loss, 0u);
  EXPECT_GT(f1.burst_loss + f1.reordered, 0u);
  EXPECT_GT(rig.d.faults[1]->stats_ba().corrupted, 0u);
  // ...the combiner degraded instead of stalling...
  EXPECT_GT(rig.rt->telemetry().counter("das_partial_merges"), 0u);
  EXPECT_EQ(rig.rt->telemetry().counter("das_combiner_stalls"), 0u);
  // ...the cache stayed bounded (stale leftovers are swept every slot,
  // never accumulated)...
  EXPECT_LT(rig.rt->telemetry().counter("cache_stale"),
            std::uint64_t(slots) * 32);
  // ...and the cell still carries traffic in both directions.
  rig.d.measure(200);
  double dl = 0, ul = 0;
  for (UeId ue : rig.ues) {
    dl += rig.d.dl_mbps(ue);
    ul += rig.d.ul_mbps(ue);
  }
  EXPECT_GT(dl, 10.0);
  EXPECT_GT(ul, 1.0);
}

TEST(ChaosDas, SameSeedReplaysByteIdentical) {
  const std::string a = run_das_chaos(42, exec::ExecPolicy::serial(), 600);
  const std::string b = run_das_chaos(42, exec::ExecPolicy::serial(), 600);
  EXPECT_EQ(a, b);
  const std::string c = run_das_chaos(43, exec::ExecPolicy::serial(), 600);
  EXPECT_NE(a, c);  // the seed is actually load-bearing
}

TEST(ChaosDas, ParallelMatchesSerial) {
  const std::string serial =
      run_das_chaos(42, exec::ExecPolicy::serial(), 600);
  const std::string parallel =
      run_das_chaos(42, exec::ExecPolicy::parallel(4), 600);
  EXPECT_EQ(serial, parallel);
}

// ----------------------------------------------------------------------
// Burst-pipeline determinism: the pump moves packets in 32-slot chunks;
// the chunking must be invisible to the packet-level outcome.
// ----------------------------------------------------------------------

/// Bursty-arrival cocktail: heavy jitter smears per-symbol streams so
/// pumps see anything from 1-packet stragglers to multi-chunk pileups;
/// reorder + duplication mix ports and break arrival monotonicity.
std::string run_das_bursty(std::uint64_t seed, const exec::ExecPolicy& policy,
                           int slots,
                           MiddleboxRuntime::BurstHist* size_hist,
                           MiddleboxRuntime::BurstHist* occ_hist) {
  ChaosDasRig rig(policy);
  EXPECT_TRUE(rig.d.attach_all(600));
  FaultPlan ul0;  // floor 0 uplink: strong jitter (straggler generator)
  ul0.jitter_ns = 120'000;
  ul0.seed = seed ^ 0xc1;
  FaultPlan dl0;
  dl0.delay_ns = 30'000;
  dl0.seed = seed ^ 0xc2;
  rig.d.add_fault(*rig.rus[0].port, ul0, dl0);
  FaultPlan ul1;  // floor 1 uplink: reordering + duplication + jitter
  ul1.reorder = 0.05;
  ul1.duplicate = 0.03;
  ul1.jitter_ns = 60'000;
  ul1.seed = seed ^ 0xd1;
  FaultPlan dl1;
  dl1.seed = seed ^ 0xd2;
  rig.d.add_fault(*rig.rus[1].port, ul1, dl1);
  rig.d.engine.run_slots(slots);
  if (size_hist) *size_hist = rig.rt->burst_size_hist();
  if (occ_hist) *occ_hist = rig.rt->burst_occupancy_hist();
  return snapshot(rig.d, rig.ues);
}

TEST(BurstDeterminism, BurstySoakSerialMatchesParallel4) {
  // 2000-slot soak under the bursty cocktail: the serial and parallel(4)
  // engines chunk pumps differently (direct vs barrier-deferred TX), yet
  // every counter, fault stat and air-interface bit count must agree.
  constexpr int kSlots = 2000;
  MiddleboxRuntime::BurstHist size_s{}, occ_s{};
  const std::string serial =
      run_das_bursty(7, exec::ExecPolicy::serial(), kSlots, &size_s, &occ_s);
  const std::string parallel =
      run_das_bursty(7, exec::ExecPolicy::parallel(4), kSlots, nullptr,
                     nullptr);
  EXPECT_EQ(serial, parallel);

  // The soak exercised the arrival shapes the burst pipeline
  // special-cases: small straggler drains (jitter/reorder releases) and
  // pileups deep enough to fill whole 32-slot dispatch chunks (a drain
  // beyond one chunk implies at least one full chunk). Exact 1-packet
  // bursts are covered deterministically by Runtime.BurstHistograms.
  ASSERT_GT(occ_s.count, 0u);
  EXPECT_GT(occ_s.bucket[2], 0u);                    // <=4-packet chunks
  EXPECT_GT(size_s.count - size_s.bucket[5], 0u);    // pumps > 32 packets
}

TEST(BurstDeterminism, BurstySoakSameSeedReplaysHistograms) {
  // Same seed + same mode replays the exact pump chunking, histograms
  // included (they are checkpointed state).
  MiddleboxRuntime::BurstHist sa{}, oa{}, sb{}, ob{};
  const std::string a =
      run_das_bursty(11, exec::ExecPolicy::serial(), 600, &sa, &oa);
  const std::string b =
      run_das_bursty(11, exec::ExecPolicy::serial(), 600, &sb, &ob);
  EXPECT_EQ(a, b);
  EXPECT_EQ(sa.bucket, sb.bucket);
  EXPECT_EQ(sa.count, sb.count);
  EXPECT_EQ(sa.sum, sb.sum);
  EXPECT_EQ(oa.bucket, ob.bucket);
  EXPECT_EQ(oa.count, ob.count);
  EXPECT_EQ(oa.sum, ob.sum);
}

TEST(ChaosDas, OnePercentUplinkLossKeepsThroughput) {
  // Acceptance: under 1% i.i.d. uplink loss the DAS cell keeps >90% of
  // its lossless uplink throughput with zero combiner stalls.
  double base_ul = 0;
  {
    ChaosDasRig rig;
    ASSERT_TRUE(rig.d.attach_all(600));
    rig.d.measure(400);
    for (UeId ue : rig.ues) base_ul += rig.d.ul_mbps(ue);
    ASSERT_GT(base_ul, 1.0);
  }
  ChaosDasRig rig;
  ASSERT_TRUE(rig.d.attach_all(600));
  for (auto& ru : rig.rus) {
    FaultPlan ul;
    ul.loss = 0.01;
    ul.seed = 0x1055u + std::uint64_t(ru.index);
    rig.d.add_fault(*ru.port, ul);
  }
  rig.d.measure(400);
  double ul = 0;
  for (UeId ue : rig.ues) ul += rig.d.ul_mbps(ue);
  EXPECT_GT(ul, base_ul * 0.9);
  EXPECT_GT(rig.rt->telemetry().counter("das_partial_merges"), 0u);
  EXPECT_EQ(rig.rt->telemetry().counter("das_combiner_stalls"), 0u);
}

TEST(ChaosDmimo, QuietPartnerFallsBackAndRecovers) {
  Deployment d;
  CellConfig c = cell100();
  c.max_layers = 2;
  auto du = d.add_du(c, srsran_profile(), 0);
  RuSite s1;
  s1.pos = d.plan.ru_position(0, 1);
  s1.n_antennas = 1;
  s1.bandwidth = MHz(100);
  s1.center_freq = du.du->config().cell.center_freq;
  RuSite s2 = s1;
  s2.pos.x += 5.0;
  auto ru1 = d.add_ru(s1, 0, du.du->fh());
  auto ru2 = d.add_ru(s2, 1, du.du->fh());
  auto& rt = d.add_dmimo(du, {&ru1, &ru2});
  Position pos = s1.pos;
  pos.x += 2.5;
  pos.y += 4.33;
  const UeId ue = d.add_ue(pos, &du, 600.0, 50.0);
  ASSERT_TRUE(d.attach_all(400));

  // RU 2's uplink goes silent for 300 slots (its downlink still works, as
  // when its PA keeps radiating but the fronthaul RX path died).
  const std::int64_t s0 = d.engine.current_slot();
  FaultPlan quiet;
  quiet.flaps = {{s0 + 10, s0 + 310}};
  d.add_fault(*ru2.port, quiet);

  d.engine.run_slots(200);
  EXPECT_GE(rt.telemetry().counter("dmimo_ru_fallbacks"), 1u);
  EXPECT_GT(rt.telemetry().counter("dmimo_fallback_drops"), 0u);
  EXPECT_EQ(rt.telemetry().gauge("dmimo_rus_live"), 1.0);
  // Single-RU degraded service: the UE stays attached and keeps moving
  // data through the surviving RU.
  EXPECT_TRUE(d.air.is_attached(ue));
  d.measure(100);
  EXPECT_GT(d.dl_mbps(ue), 1.0);

  // The partner comes back: layers are restored.
  d.engine.run_slots(150);
  EXPECT_GE(rt.telemetry().counter("dmimo_ru_recoveries"), 1u);
  EXPECT_EQ(rt.telemetry().gauge("dmimo_rus_live"), 2.0);
  d.measure(200);
  EXPECT_GT(d.dl_mbps(ue), 10.0);
}

TEST(ChaosRushare, CorruptionIsQuarantinedNotForwarded) {
  Deployment d;
  const Hertz ru_center = GHz(3) + MHz(460);
  RuSite s;
  s.pos = d.plan.ru_position(0, 1);
  s.n_antennas = 4;
  s.bandwidth = MHz(100);
  s.center_freq = ru_center;
  auto cell40 = [](Hertz center, std::uint16_t pci) {
    CellConfig c;
    c.bandwidth = MHz(40);
    c.center_freq = center;
    c.max_layers = 4;
    c.pci = pci;
    return c;
  };
  const Hertz ca =
      aligned_du_center_frequency(ru_center, 273, 106, 10, Scs::kHz30);
  const Hertz cb =
      aligned_du_center_frequency(ru_center, 273, 106, 150, Scs::kHz30);
  auto du_a = d.add_du(cell40(ca, 1), srsran_profile(), 0);
  auto du_b = d.add_du(cell40(cb, 2), srsran_profile(), 1);
  auto ru = d.add_ru(s, 0, du_a.du->fh());
  auto& rt = d.add_rushare({&du_a, &du_b}, ru);
  const UeId ue_a = d.add_ue(d.plan.near_ru(0, 1, 5.0), &du_a, 300.0, 30.0, 1);
  const UeId ue_b = d.add_ue(d.plan.near_ru(0, 1, -5.0), &du_b, 300.0, 30.0, 2);
  ASSERT_TRUE(d.attach_all(600));

  // Tenant A's link corrupts 2% of frames in both directions; a corrupted
  // frame either fails the typed parsers or is quarantined by the
  // semantic checks - it must never leak into tenant B's slice.
  FaultPlan bad;
  bad.corrupt = 0.02;
  bad.corrupt_bits = 4;
  bad.seed = 0xc0ffee;
  d.add_fault(*du_a.port, bad, bad);
  d.engine.run_slots(2000);

  std::uint64_t rejected = 0;
  for (const auto& [k, v] : rt.telemetry().counters())
    if (k.rfind("parse_reject_", 0) == 0) rejected += v;
  rejected += rt.telemetry().counter("rushare_quarantine_src_mac");
  rejected += rt.telemetry().counter("rushare_quarantine_geometry");
  EXPECT_GT(rejected, 0u);

  // Both tenants still carry traffic (B is fault-free and must be
  // unaffected beyond scheduler noise).
  d.measure(300);
  EXPECT_GT(d.dl_mbps(ue_b), 10.0);
  EXPECT_GT(d.dl_mbps(ue_a), 1.0);
}

}  // namespace
}  // namespace rb
