// Closed-loop fronthaul adaptation controller (ISSUE 6): hysteresis policy
// unit tests driven by synthetic fault counters, end-to-end DAS ejection
// and recovery under a delay-poisoned link, mixed-width combining after a
// width actuation, and the controller-enabled chaos soak whose snapshot
// (runtime counters + fault counters + controller state) must replay
// bit-identically under serial and parallel execution.
#include <gtest/gtest.h>

#include <sstream>

#include "core/mgmt.h"
#include "sim/deployment.h"

namespace rb {
namespace {

using Mode = ctrl::AdaptationController::LinkMode;

CellConfig cell100() {
  CellConfig c;
  c.bandwidth = MHz(100);
  c.max_layers = 4;
  c.pci = 1;
  return c;
}

/// DAS cell over three floors with one loaded UE per floor (the chaos-rig
/// topology, here supervised by an adaptation controller).
struct CtrlDasRig {
  Deployment d;
  Deployment::DuHandle du;
  std::vector<Deployment::RuHandle> rus;
  MiddleboxRuntime* rt = nullptr;
  std::vector<UeId> ues;

  explicit CtrlDasRig(const exec::ExecPolicy& policy = {}) {
    d.engine.set_exec_policy(policy);
    du = d.add_du(cell100(), srsran_profile(), 0);
    std::vector<Deployment::RuHandle*> ptrs;
    for (int f = 0; f < 3; ++f) {
      RuSite site;
      site.pos = d.plan.ru_position(f, 1);
      site.n_antennas = 4;
      site.bandwidth = MHz(100);
      site.center_freq = du.du->config().cell.center_freq;
      rus.push_back(d.add_ru(site, std::uint8_t(f), du.du->fh()));
    }
    for (auto& r : rus) ptrs.push_back(&r);
    rt = &d.add_das(du, ptrs, DriverKind::Dpdk, 2);
    for (int f = 0; f < 3; ++f)
      ues.push_back(d.add_ue(d.plan.near_ru(f, 1, 5.0), &du, 150.0, 15.0));
  }

  double total_ul() {
    double ul = 0;
    for (UeId ue : ues) ul += d.ul_mbps(ue);
    return ul;
  }
};

// --- policy unit tests (synthetic counters, capturing actuator) --------

struct UnitLink {
  FaultStats stats;
  std::vector<ctrl::CtrlAction> applied;
  bool accept = true;
};

ctrl::CtrlConfig fast_cfg() {
  ctrl::CtrlConfig cfg;
  cfg.alpha = 0.5;  // converge in a few slots so the test stays short
  cfg.hold_slots = 4;
  cfg.recover_hold_slots = 6;
  cfg.dwell_slots = 5;
  return cfg;
}

TEST(CtrlPolicy, EscalationLadderThenStepwiseRecovery) {
  const ctrl::CtrlConfig cfg = fast_cfg();
  ctrl::AdaptationController c(cfg);
  UnitLink l;
  ctrl::LinkSpec spec;
  spec.name = "unit";
  spec.ul_stats = &l.stats;
  spec.actuate = [&l](const ctrl::CtrlAction& a) {
    if (l.accept) l.applied.push_back(a);
    return l.accept;
  };
  const int link = c.add_link(spec);
  std::int64_t slot = 0;
  auto tick = [&](std::uint64_t pass, std::uint64_t drop) {
    l.stats.passed += pass;
    l.stats.iid_loss += drop;
    c.on_slot(slot++);
  };

  // Clean traffic: the controller watches and does nothing.
  for (int i = 0; i < 10; ++i) tick(100, 0);
  EXPECT_TRUE(l.applied.empty());
  EXPECT_EQ(c.mode(link), Mode::Healthy);
  EXPECT_NEAR(c.loss_ewma(link), 0.0, 1e-9);

  // 10% loss: over loss_reduce (1.5%), under loss_eject (20%). The EWMA
  // crosses on the first lossy slot; the hold streak delays the action
  // until hold_slots consecutive breaches.
  for (int i = 0; i < 3; ++i) tick(90, 10);
  EXPECT_TRUE(l.applied.empty());  // streak 3 < hold_slots 4
  tick(90, 10);
  ASSERT_EQ(l.applied.size(), 1u);
  EXPECT_EQ(l.applied[0].verb, ctrl::CtrlVerb::SetUlIqWidth);
  EXPECT_EQ(l.applied[0].value, cfg.degraded_iq_width);
  EXPECT_EQ(c.mode(link), Mode::WidthReduced);

  // Same loss level sustained: no repeat actions (already width-reduced,
  // not bad enough to eject).
  for (int i = 0; i < 20; ++i) tick(90, 10);
  EXPECT_EQ(l.applied.size(), 1u);

  // Loss deepens past loss_eject: the ladder escalates to ejection, once.
  for (int i = 0; i < 20; ++i) tick(50, 50);
  ASSERT_EQ(l.applied.size(), 2u);
  EXPECT_EQ(l.applied[1].verb, ctrl::CtrlVerb::SetDasMember);
  EXPECT_FALSE(l.applied[1].enable);
  EXPECT_EQ(c.mode(link), Mode::Ejected);

  // Sustained recovery de-escalates one rung at a time - readmit first,
  // width restore second - with at least dwell_slots between the rungs.
  for (int i = 0; i < 60; ++i) tick(100, 0);
  ASSERT_EQ(l.applied.size(), 4u);
  EXPECT_EQ(l.applied[2].verb, ctrl::CtrlVerb::SetDasMember);
  EXPECT_TRUE(l.applied[2].enable);
  EXPECT_EQ(l.applied[3].verb, ctrl::CtrlVerb::SetUlIqWidth);
  EXPECT_EQ(l.applied[3].value, spec.nominal_iq_width);
  EXPECT_GE(l.applied[3].slot - l.applied[2].slot, cfg.dwell_slots);
  EXPECT_EQ(c.mode(link), Mode::Healthy);
  EXPECT_EQ(c.actions_applied(), 4u);
}

TEST(CtrlPolicy, DelayBudgetBreachEjectsWithoutLoss) {
  const ctrl::CtrlConfig cfg = fast_cfg();
  ctrl::AdaptationController c(cfg);
  UnitLink l;
  ctrl::LinkSpec spec;
  spec.name = "slow";
  spec.ul_stats = &l.stats;
  spec.actuate = [&l](const ctrl::CtrlAction& a) {
    l.applied.push_back(a);
    return true;
  };
  const int link = c.add_link(spec);
  // Every packet delivered, but 60us late: a lossless link can still
  // poison DAS combines past the DU latency budget.
  for (std::int64_t slot = 0; slot < 20; ++slot) {
    l.stats.delayed += 10;
    l.stats.delay_ns_total += 10 * 60'000;
    c.on_slot(slot);
  }
  ASSERT_EQ(l.applied.size(), 1u);
  EXPECT_EQ(l.applied[0].verb, ctrl::CtrlVerb::SetDasMember);
  EXPECT_FALSE(l.applied[0].enable);
  EXPECT_EQ(c.mode(link), Mode::Ejected);
  EXPECT_NEAR(c.loss_ewma(link), 0.0, 1e-9);
  EXPECT_GT(c.delay_ewma_ns(link), double(cfg.delay_eject_ns));
}

TEST(CtrlPolicy, QuietSlotsFreezeEwmasAndRefusalsDontCount) {
  const ctrl::CtrlConfig cfg = fast_cfg();
  ctrl::AdaptationController c(cfg);
  UnitLink l;
  l.accept = false;  // actuator refuses (e.g. last active DAS member)
  ctrl::LinkSpec spec;
  spec.name = "frozen";
  spec.ul_stats = &l.stats;
  spec.actuate = [&l](const ctrl::CtrlAction& a) {
    if (l.accept) l.applied.push_back(a);
    return l.accept;
  };
  const int link = c.add_link(spec);
  std::int64_t slot = 0;
  for (int i = 0; i < 6; ++i) {
    l.stats.passed += 50;
    l.stats.iid_loss += 50;
    c.on_slot(slot++);
  }
  const double ewma = c.loss_ewma(link);
  EXPECT_GT(ewma, cfg.loss_eject);
  // A refused action leaves the controller ready to retry: no mode change,
  // no action counted.
  EXPECT_EQ(c.mode(link), Mode::Healthy);
  EXPECT_EQ(c.actions_applied(), 0u);
  // Slots with zero traffic freeze the EWMAs instead of decaying them
  // toward zero (no evidence = no opinion change).
  for (int i = 0; i < 10; ++i) c.on_slot(slot++);
  EXPECT_EQ(c.loss_ewma(link), ewma);
  // Once the actuator accepts, the pending breach applies immediately.
  l.accept = true;
  l.stats.passed += 50;
  l.stats.iid_loss += 50;
  c.on_slot(slot++);
  ASSERT_EQ(l.applied.size(), 1u);
  EXPECT_EQ(c.mode(link), Mode::Ejected);
}

// --- mgmt plumbing ------------------------------------------------------

TEST(CtrlMgmt, VerbRoutesThroughEndpointAndForcesActions) {
  CtrlDasRig rig;
  ASSERT_TRUE(rig.d.attach_all(600));
  MgmtEndpoint mgmt(*rig.rt);
  EXPECT_EQ(mgmt.handle("ctrl status"), "no controller attached");

  FaultPlan benign;
  auto& link = rig.d.add_fault(*rig.rus[0].port, benign);
  auto& c = rig.d.add_controller();
  const int li = rig.d.ctrl_watch(c, link, *rig.rt, rig.rus[0]);
  mgmt.set_ctrl(&c);

  EXPECT_NE(mgmt.handle("ctrl status").find("decision_slots="),
            std::string::npos);
  EXPECT_NE(mgmt.handle("ctrl links").find(link.name()), std::string::npos);
  // Operator override: force-eject floor 0, then readmit.
  EXPECT_EQ(mgmt.handle("ctrl force 0 eject"), "ok");
  EXPECT_EQ(c.mode(li), Mode::Ejected);
  rig.d.engine.run_slots(2);  // let the gauge publish
  EXPECT_EQ(rig.rt->telemetry().gauge("das_active_members"), 2.0);
  EXPECT_NE(mgmt.handle("ctrl status").find("mode=ejected"),
            std::string::npos);
  EXPECT_EQ(mgmt.handle("ctrl force 0 admit"), "ok");
  EXPECT_EQ(c.mode(li), Mode::Healthy);
  // Forced width change routes to the RU (srsran profile carries a
  // udCompHdr, so the change is legal).
  EXPECT_EQ(mgmt.handle("ctrl force 0 width 7"), "ok");
  EXPECT_EQ(rig.rus[0].ru->ul_iq_width(), 7);
  EXPECT_EQ(mgmt.handle("ctrl force 9 eject"), "bad link index");
  // The per-runtime Prometheus rendering carries the actuation gauge.
  EXPECT_NE(mgmt.handle("prom").find("das_active_members"),
            std::string::npos);
}

// --- end-to-end: DAS ejection and recovery ------------------------------

TEST(CtrlDas, EjectsDelayPoisonedLinkThenReadmitsAfterHeal) {
  CtrlDasRig rig;
  ASSERT_TRUE(rig.d.attach_all(600));

  // Floor 0's uplink gets 60us of fixed extra delay: every combine that
  // waits for its copy lands past the DU's latency budget.
  FaultPlan slow;
  slow.delay_ns = 60'000;
  slow.seed = 0x51;
  auto& link = rig.d.add_fault(*rig.rus[0].port, slow);
  auto& c = rig.d.add_controller();
  const int li = rig.d.ctrl_watch(c, link, *rig.rt, rig.rus[0]);

  rig.d.engine.run_slots(100);
  EXPECT_EQ(c.mode(li), Mode::Ejected);
  EXPECT_EQ(rig.rt->telemetry().gauge("das_active_members"), 2.0);
  EXPECT_GE(c.actions_applied(), 1u);
  // Service continues on the remaining two floors' RUs.
  rig.d.measure(200);
  EXPECT_GT(rig.total_ul(), 1.0);
  // Controller state renders into the determinism snapshot.
  const std::string dump = rig.d.ctrl_dump();
  EXPECT_NE(dump.find("mode=ejected"), std::string::npos);
  EXPECT_NE(dump.find("set_das_member"), std::string::npos);

  // The link heals: delay EWMA decays, and after the recovery hold the
  // member is readmitted (no width rung was taken, so Healthy directly).
  link.set_plan_ab(FaultPlan{});
  rig.d.engine.run_slots(300);
  EXPECT_EQ(c.mode(li), Mode::Healthy);
  EXPECT_EQ(rig.rt->telemetry().gauge("das_active_members"), 3.0);
}

TEST(CtrlDas, MixedWidthMembersStillCombine) {
  // After a width actuation one member emits width-7 U-plane while the
  // others stay at 9: the combiner must decode each copy at its own
  // udCompHdr width and keep merging without failures.
  CtrlDasRig rig;
  ASSERT_TRUE(rig.d.attach_all(600));
  ASSERT_EQ(rig.rus[0].ru->ul_iq_width(), 9);
  ASSERT_TRUE(rig.rus[0].ru->set_ul_iq_width(7));
  rig.d.measure(300);
  EXPECT_GT(rig.rt->telemetry().counter("das_merges"), 0u);
  EXPECT_EQ(rig.rt->telemetry().counter("das_merge_failures"), 0u);
  EXPECT_EQ(rig.rt->telemetry().counter("das_combiner_stalls"), 0u);
  EXPECT_GT(rig.total_ul(), 1.0);
}

TEST(CtrlDas, RadisysProfileRefusesWidthChange) {
  // No udCompHdr on the wire means peers assume the configured width;
  // changing it unilaterally would desynchronize the link, so the RU
  // refuses (the controller then simply skips the width rung).
  Deployment d;
  auto du = d.add_du(cell100(), radisys_profile(), 0);
  RuSite site;
  site.pos = d.plan.ru_position(0, 1);
  site.n_antennas = 4;
  site.bandwidth = MHz(100);
  site.center_freq = du.du->config().cell.center_freq;
  auto ru = d.add_ru(site, 0, du.du->fh());
  EXPECT_FALSE(ru.ru->set_ul_iq_width(7));
  EXPECT_EQ(ru.ru->ul_iq_width(), du.du->fh().comp.iq_width);
  // Re-asserting the current width is a no-op, not a refusal.
  EXPECT_TRUE(ru.ru->set_ul_iq_width(ru.ru->ul_iq_width()));
}

// --- chaos soak with the controller in the loop (ISSUE 6 satellite) -----

/// Fingerprint including the controller's full state: EWMAs, modes,
/// streaks and the slot-stamped action log must all replay identically.
std::string ctrl_snapshot(Deployment& d, const std::vector<UeId>& ues) {
  std::ostringstream os;
  for (const auto& rt : d.runtimes)
    for (const auto& [k, v] : rt->telemetry().counters())
      os << k << "=" << v << "\n";
  os << d.fault_dump();
  os << d.ctrl_dump();
  for (UeId ue : ues)
    os << "ue" << ue << " dl=" << d.air.dl_bits(ue)
       << " ul=" << d.air.ul_bits(ue) << "\n";
  return os.str();
}

std::string run_ctrl_chaos(std::uint64_t seed, const exec::ExecPolicy& policy,
                           int slots) {
  CtrlDasRig rig(policy);
  EXPECT_TRUE(rig.d.attach_all(600));

  // The chaos-rig fault cocktail, controller-supervised: floor 0 takes
  // light loss plus jitter that straddles the delay thresholds, floor 1
  // takes Gilbert-Elliott burst loss deep enough to trip the ladder.
  FaultPlan ul0;
  ul0.loss = 0.01;
  ul0.jitter_ns = 20'000;
  ul0.seed = seed ^ 0xa1;
  FaultPlan dl0;
  dl0.delay_ns = 10'000;
  dl0.seed = seed ^ 0xa2;
  auto& link0 = rig.d.add_fault(*rig.rus[0].port, ul0, dl0);

  FaultPlan ul1;
  ul1.ge_enter_bad = 0.004;
  ul1.ge_exit_bad = 0.25;
  ul1.ge_loss_bad = 0.5;
  ul1.reorder = 0.01;
  ul1.seed = seed ^ 0xb1;
  FaultPlan dl1;
  dl1.duplicate = 0.02;
  dl1.corrupt = 0.01;
  dl1.seed = seed ^ 0xb2;
  auto& link1 = rig.d.add_fault(*rig.rus[1].port, ul1, dl1);

  auto& c = rig.d.add_controller();
  rig.d.ctrl_watch(c, link0, *rig.rt, rig.rus[0]);
  rig.d.ctrl_watch(c, link1, *rig.rt, rig.rus[1]);
  rig.d.engine.run_slots(slots);
  EXPECT_EQ(rig.rt->telemetry().counter("das_combiner_stalls"), 0u);
  return ctrl_snapshot(rig.d, rig.ues);
}

TEST(CtrlChaos, SoakSnapshotIdenticalSerialVsParallel) {
  const std::string serial =
      run_ctrl_chaos(42, exec::ExecPolicy::serial(), 2000);
  const std::string parallel =
      run_ctrl_chaos(42, exec::ExecPolicy::parallel(4), 2000);
  EXPECT_EQ(serial, parallel);
  // The soak actually exercised the controller, not just the plumbing.
  EXPECT_NE(serial.find("decision_slots="), std::string::npos);
  const std::string other =
      run_ctrl_chaos(43, exec::ExecPolicy::serial(), 2000);
  EXPECT_NE(serial, other);  // the seed is load-bearing
}

}  // namespace
}  // namespace rb
