// Real-time PRB utilization dashboard (paper section 4.4).
//
// Subscribes to the PRB-monitor middlebox's streaming telemetry and
// renders a per-100ms utilization timeline while the offered load ramps
// up and down - the kind of sub-second visibility the E2/RIC path cannot
// provide (paper: vendors expose KPIs at minutes granularity).
//
//   ./build/examples/prb_dashboard
#include <cstdio>
#include <string>
#include <vector>

#include "sim/deployment.h"

namespace {

std::string bar(double fraction, int width = 40) {
  std::string s;
  const int fill = int(fraction * width + 0.5);
  for (int i = 0; i < width; ++i) s += i < fill ? '#' : '.';
  return s;
}

}  // namespace

int main() {
  using namespace rb;

  Deployment d;
  CellConfig cell;
  cell.bandwidth = MHz(100);
  cell.max_layers = 4;
  auto du = d.add_du(cell, srsran_profile(), 0);
  RuSite site;
  site.pos = d.plan.ru_position(0, 1);
  site.n_antennas = 4;
  site.bandwidth = MHz(100);
  site.center_freq = cell.center_freq;
  auto ru = d.add_ru(site, 0, du.du->fh());
  auto& rt = d.add_prbmon(du, ru);

  const UeId ue = d.add_ue(d.plan.near_ru(0, 1, 5.0), &du, 0, 0);
  if (!d.attach_all(600)) {
    std::printf("UE failed to attach\n");
    return 1;
  }

  // Aggregate the per-slot samples into 100 ms buckets.
  struct Bucket {
    double dl = 0, ul = 0;
    int n_dl = 0, n_ul = 0;
  };
  std::vector<Bucket> buckets(1);
  std::int64_t bucket_start = d.engine.current_slot();
  rt.telemetry().subscribe([&](const TelemetrySample& s) {
    while (s.slot - bucket_start >= 200) {  // 200 slots = 100 ms
      buckets.emplace_back();
      bucket_start += 200;
    }
    auto& b = buckets.back();
    if (s.key == "prb_util_dl") {
      b.dl += s.value;
      b.n_dl++;
    } else if (s.key == "prb_util_ul") {
      b.ul += s.value;
      b.n_ul++;
    }
  });

  // Load ramp: 0 -> 300 -> 700 -> 150 -> 0 Mbps, 200 ms each.
  const double ramp[] = {0, 300, 700, 150, 0};
  for (double mbps : ramp) {
    d.traffic.set_flow(*du.du, ue, mbps, mbps / 10.0);
    d.engine.run_slots(400);  // 200 ms
  }

  std::printf("PRB utilization per 100 ms (cell: 100 MHz / 273 PRBs)\n");
  std::printf("%6s  %-42s %-42s\n", "t(ms)", "downlink", "uplink");
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const auto& b = buckets[i];
    const double dl = b.n_dl ? b.dl / b.n_dl : 0.0;
    const double ul = b.n_ul ? b.ul / b.n_ul : 0.0;
    std::printf("%6zu  %s %4.0f%%  %s %4.0f%%\n", i * 100,
                bar(dl).c_str(), 100 * dl, bar(ul).c_str(), 100 * ul);
  }
  std::printf("\n(the load ramp was 0 / 300 / 700 / 150 / 0 Mbps DL - the "
              "dashboard tracks it at sub-second granularity)\n");
  return 0;
}
