// vRAN resilience with a fronthaul middlebox (paper section 8.1).
//
// A primary and a warm standby DU run the same cell; the failover
// middlebox watches the primary's fronthaul heartbeat and re-routes the
// RU to the standby when the primary crashes - then fails back when it
// returns. The example prints a timeline of the outage and recovery.
//
//   ./build/examples/failover
#include <cstdio>

#include "sim/deployment.h"

int main() {
  using namespace rb;

  Deployment d;
  CellConfig cell;
  cell.bandwidth = MHz(100);
  cell.max_layers = 4;
  cell.pci = 7;
  auto primary = d.add_du(cell, srsran_profile(), 0);
  auto standby = d.add_du(cell, srsran_profile(), 1);
  RuSite site;
  site.pos = d.plan.ru_position(0, 1);
  site.n_antennas = 4;
  site.bandwidth = MHz(100);
  site.center_freq = cell.center_freq;
  auto ru = d.add_ru(site, 0, primary.du->fh());
  auto& rt = d.add_failover(primary, standby, ru);
  auto* mb = dynamic_cast<FailoverMiddlebox*>(&rt.app());

  const UeId ue = d.add_ue(d.plan.near_ru(0, 1, 5.0));
  d.traffic.set_flow(*primary.du, ue, 300, 30);
  d.traffic.set_flow(*standby.du, ue, 300, 30);

  if (!d.attach_all(600)) {
    std::printf("UE failed to attach\n");
    return 1;
  }

  auto report = [&](const char* phase) {
    // Drop queued backlog so each phase reports steady-state throughput.
    primary.du->scheduler().clear_backlogs();
    standby.du->scheduler().clear_backlogs();
    d.measure(200);  // 100 ms window
    std::printf("%-28s active=%-8s attached=%-3s DL %.1f Mbps "
                "(failovers so far: %lld)\n",
                phase,
                mb->active_port() == FailoverMiddlebox::kPrimary ? "primary"
                                                                 : "standby",
                d.air.is_attached(ue) ? "yes" : "NO", d.dl_mbps(ue),
                (long long)mb->failovers());
  };

  report("steady state:");

  std::printf("\n>>> killing the primary DU <<<\n");
  primary.du->set_failed(true);
  d.engine.run_slots(10);  // 5 ms: heartbeat loss detected
  std::printf("switchover after ~%d slots (%.1f ms budget)\n", 4, 2.0);
  d.engine.run_slots(300);  // UE re-attaches to the standby's cell
  report("on standby:");

  std::printf("\n>>> primary restored <<<\n");
  primary.du->set_failed(false);
  d.engine.run_slots(310);
  report("after failback:");

  std::printf("\nmiddlebox counters: switchovers=%llu failbacks=%llu "
              "suppressed=%llu\n",
              (unsigned long long)rt.telemetry().counter(
                  "failover_switchovers"),
              (unsigned long long)rt.telemetry().counter("failover_failbacks"),
              (unsigned long long)rt.telemetry().counter(
                  "failover_suppressed"));
  return 0;
}
