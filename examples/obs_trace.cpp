// Observability quickstart: trace a 100-slot DAS run and dump it for
// Perfetto.
//
// Builds the paper's DAS floor deployment (one 100 MHz cell distributed
// over three RUs), turns the obs collector on, runs 100 slots, and
// writes:
//   obs_das_trace.json   - Chrome-trace/Perfetto JSON: slot/symbol spans
//                          on the engine track, per-middlebox handler and
//                          action spans, per-link wire-delay spans.
//                          Open at https://ui.perfetto.dev (or
//                          chrome://tracing) and zoom into one slot.
//   obs_das_budgets.csv  - per-slot budget vs the 500 us deadline.
// It also prints the text summary and the Prometheus exposition that the
// management plane serves ("obs stats" / "obs prom" on any middlebox).
//
//   cmake --build build && ./build/examples/obs_trace
#include <cstdio>

#include "obs/export.h"
#include "obs/obs.h"
#include "sim/deployment.h"

int main() {
  using namespace rb;

  Deployment d;
  CellConfig cell;
  cell.bandwidth = MHz(100);
  cell.max_layers = 4;
  auto du = d.add_du(cell, srsran_profile(), 0);
  std::vector<Deployment::RuHandle> rus;
  std::vector<Deployment::RuHandle*> ptrs;
  for (int f = 0; f < 3; ++f) {
    RuSite site;
    site.pos = d.plan.ru_position(f, 1);
    site.n_antennas = 4;
    site.bandwidth = MHz(100);
    site.center_freq = cell.center_freq;
    rus.push_back(d.add_ru(site, std::uint8_t(f), du.du->fh()));
  }
  for (auto& r : rus) ptrs.push_back(&r);
  d.add_das(du, ptrs, DriverKind::Dpdk, 2);
  for (int f = 0; f < 3; ++f)
    d.add_ue(d.plan.near_ru(f, 1, 4.0), &du, 200.0, 20.0);

  // Warm up untraced (attach, PRACH), then trace a 100-slot window.
  std::printf("attaching UEs...\n");
  d.attach_all(600);

  auto& col = obs::Collector::instance();
  col.start();
  d.engine.run_slots(100);
  col.stop();

  std::printf("%s", obs::summary(col).c_str());

  const std::string json = obs::chrome_trace_json(col);
  if (std::FILE* f = std::fopen("obs_das_trace.json", "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote obs_das_trace.json (%zu bytes) - open at "
                "https://ui.perfetto.dev\n",
                json.size());
  }
  const std::string csv = obs::budget_csv(col);
  if (std::FILE* f = std::fopen("obs_das_budgets.csv", "w")) {
    std::fwrite(csv.data(), 1, csv.size(), f);
    std::fclose(f);
    std::printf("wrote obs_das_budgets.csv\n");
  }
  std::printf("\nPrometheus exposition (first lines):\n");
  const std::string prom = obs::prometheus_text(col);
  std::printf("%s", prom.substr(0, prom.find("# TYPE rb_obs_mb")).c_str());
  return 0;
}
