// Private 5G with DAS - the paper's section 7 case study.
//
// Covers four floors of the Cambridge building with one cell per floor,
// each distributed over that floor's four RUs by a DAS middlebox
// (frequency reuse across floors, no cell planning, no mobility
// management). UEs spread across every floor attach and pull traffic;
// the example prints a per-floor coverage/throughput report.
//
//   ./build/examples/das_building
#include <cstdio>
#include <vector>

#include "sim/deployment.h"

int main() {
  using namespace rb;

  Deployment d;
  const int kFloors = 4;

  struct Floor {
    Deployment::DuHandle du;
    std::vector<Deployment::RuHandle> rus;
    std::vector<UeId> ues;
  };
  std::vector<Floor> floors(kFloors);

  for (int f = 0; f < kFloors; ++f) {
    // One 100 MHz cell per floor; reuse the same spectrum (the concrete
    // slabs isolate the floors, paper section 7).
    CellConfig cell;
    cell.bandwidth = MHz(100);
    cell.center_freq = GHz(3) + MHz(460);
    cell.max_layers = 4;
    cell.pci = std::uint16_t(f + 1);
    floors[f].du = d.add_du(cell, srsran_profile(), std::uint8_t(f));

    std::vector<Deployment::RuHandle*> ptrs;
    for (int i = 0; i < 4; ++i) {
      RuSite site;
      site.pos = d.plan.ru_position(f, i);
      site.n_antennas = 4;
      site.bandwidth = MHz(100);
      site.center_freq = cell.center_freq;
      floors[f].rus.push_back(d.add_ru(
          site, std::uint8_t(f * 4 + i), floors[f].du.du->fh()));
    }
    for (auto& r : floors[f].rus) ptrs.push_back(&r);
    d.add_das(floors[f].du, ptrs);

    // Three devices per floor, scattered (phones + modem Pis).
    floors[f].ues.push_back(
        d.add_ue(d.plan.near_ru(f, 0, 3.0), &floors[f].du, 150, 15));
    floors[f].ues.push_back(
        d.add_ue(d.plan.near_ru(f, 2, -8.0), &floors[f].du, 150, 15));
    Position corner{2.0, 2.0, f};  // worst-case corner office
    floors[f].ues.push_back(d.add_ue(corner, &floors[f].du, 150, 15));
  }

  std::printf("attaching %d UEs across %d floors...\n", kFloors * 3, kFloors);
  if (!d.attach_all(900)) {
    std::printf("some UEs failed to attach\n");
  }
  d.measure(600);  // 300 ms of traffic

  std::printf("\n%-8s %-28s %10s %10s %10s\n", "floor", "device", "DL Mbps",
              "UL Mbps", "attached");
  const char* kNames[3] = {"phone near RU1", "modem mid-floor",
                           "corner office"};
  for (int f = 0; f < kFloors; ++f) {
    double floor_dl = 0;
    for (int u = 0; u < 3; ++u) {
      const UeId ue = floors[f].ues[std::size_t(u)];
      std::printf("%-8d %-28s %10.1f %10.1f %10s\n", f + 1, kNames[u],
                  d.dl_mbps(ue), d.ul_mbps(ue),
                  d.air.is_attached(ue) ? "yes" : "NO");
      floor_dl += d.dl_mbps(ue);
    }
    std::printf("%-8s %-28s %10.1f\n", "", "floor total", floor_dl);
  }
  std::printf(
      "\nThe same coverage with a conventional DAS would cost ~2.5x more "
      "(run bench_a2_cost for the Appendix A.2 breakdown).\n");
  return 0;
}
