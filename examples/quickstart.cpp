// Quickstart: write your own RANBooster middlebox in ~40 lines.
//
// The middlebox template (paper section 3.2.2) asks you for one handler;
// the runtime gives you the four actions. This example builds a tiny
// "fronthaul logger" middlebox that transparently forwards traffic while
// counting C/U-plane packets per direction, inserts it between a DU and
// an RU of a simulated 100 MHz cell, attaches a UE and runs traffic.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/mgmt.h"
#include "sim/deployment.h"

namespace {

using namespace rb;

/// A minimal user middlebox: inspect-and-forward (actions A1 + A4-read).
class FronthaulLogger final : public MiddleboxApp {
 public:
  std::string name() const override { return "fh-logger"; }

  void on_frame(int in_port, PacketPtr p, FhFrame& frame,
                MbContext& ctx) override {
    const char* plane = frame.is_cplane() ? "cplane" : "uplane";
    const char* dir = frame.direction() == Direction::Downlink ? "dl" : "ul";
    ctx.telemetry().inc(std::string(plane) + "_" + dir);
    // Transparent bump-in-the-wire: 0 <-> 1.
    ctx.forward(std::move(p), in_port == 0 ? 1 : 0);
  }

  ProcessingLocus locus(const FhFrame&) const override {
    return ProcessingLocus::Kernel;  // pure header inspection
  }
};

}  // namespace

int main() {
  using namespace rb;

  // --- a one-cell deployment: DU <-> [your middlebox] <-> RU -----------
  Deployment d;
  CellConfig cell;
  cell.bandwidth = MHz(100);
  cell.max_layers = 4;
  auto du = d.add_du(cell, srsran_profile(), 0);

  RuSite site;
  site.pos = d.plan.ru_position(/*floor=*/0, /*idx=*/1);
  site.n_antennas = 4;
  site.bandwidth = MHz(100);
  site.center_freq = cell.center_freq;
  auto ru = d.add_ru(site, 0, du.du->fh());

  // --- instantiate your middlebox through the template ------------------
  FronthaulLogger app;
  MiddleboxRuntime::Config cfg;
  cfg.name = "fh-logger";
  cfg.fh = du.du->fh();
  cfg.driver = DriverKind::Xdp;  // interrupt-driven: CPU tracks traffic
  MiddleboxRuntime rt(cfg, app);
  Port north("logger.north"), south("logger.south");
  rt.add_port("north", north);
  rt.add_port("south", south);
  Port::connect(*du.port, north, 1'000);
  Port::connect(south, *ru.port, 1'000);
  d.engine.add_middlebox(rt);
  d.air.assign_ru(du.cell, ru.id, 0);

  // --- a UE with traffic ------------------------------------------------
  const UeId ue = d.add_ue(d.plan.near_ru(0, 1, 5.0), &du,
                           /*dl_mbps=*/400, /*ul_mbps=*/30);

  std::printf("attaching UE (SSB -> PRACH through your middlebox)...\n");
  if (!d.attach_all(600)) {
    std::printf("UE failed to attach - middlebox not forwarding?\n");
    return 1;
  }
  d.measure(/*slots=*/400);  // 200 ms

  std::printf("UE throughput: DL %.1f Mbps, UL %.1f Mbps (rank %d)\n",
              d.dl_mbps(ue), d.ul_mbps(ue), d.air.last_rank(ue));
  std::printf("middlebox CPU (XDP): %.1f%%\n",
              100.0 * rt.cpu_utilization(d.engine.elapsed_ns()));

  // --- the management interface -----------------------------------------
  MgmtEndpoint mgmt(rt);
  std::printf("mgmt 'stats':\n%s", mgmt.handle("stats").c_str());
  return 0;
}
