// Neutral host: two mobile operators over one set of shared radios.
//
// A venue owner deploys four 100 MHz RUs on a floor; two MNOs bring their
// own 40 MHz DUs. A RANBooster chain - RU sharing in front of DAS -
// multiplexes both operators over every radio with seamless coverage
// (paper sections 4.3, 6.3.2 and Figure 12). The example also drives the
// middlebox management interface the way an orchestrator would.
//
//   ./build/examples/neutral_host
#include <cstdio>

#include "core/mgmt.h"
#include "sim/deployment.h"

int main() {
  using namespace rb;

  Deployment d;
  const Hertz kRuCenter = GHz(3) + MHz(460);

  // Spectrum split per Appendix A.1.1: both operators aligned on the RU
  // grid so PRB copies stay on the cheap path.
  const Hertz mno_a_center =
      aligned_du_center_frequency(kRuCenter, 273, 106, 10, Scs::kHz30);
  const Hertz mno_b_center =
      aligned_du_center_frequency(kRuCenter, 273, 106, 150, Scs::kHz30);

  CellConfig cell_a;
  cell_a.bandwidth = MHz(40);
  cell_a.center_freq = mno_a_center;
  cell_a.pci = 1;
  CellConfig cell_b = cell_a;
  cell_b.center_freq = mno_b_center;
  cell_b.pci = 2;

  auto du_a = d.add_du(cell_a, srsran_profile(), 0);
  auto du_b = d.add_du(cell_b, srsran_profile(), 1);

  // The venue's shared RU (one here; bench_fig12_chain runs the full
  // four-RU floor).
  RuSite site;
  site.pos = d.plan.ru_position(0, 1);
  site.n_antennas = 4;
  site.bandwidth = MHz(100);
  site.center_freq = kRuCenter;
  auto ru = d.add_ru(site, 0, du_a.du->fh());

  auto& share = d.add_rushare({&du_a, &du_b}, ru);

  // One subscriber per operator, pinned to their home network by PCI.
  const UeId sub_a = d.add_ue(d.plan.near_ru(0, 1, 4.0), &du_a, 400, 30,
                              /*pci_lock=*/1);
  const UeId sub_b = d.add_ue(d.plan.near_ru(0, 1, -4.0), &du_b, 400, 30,
                              /*pci_lock=*/2);

  std::printf("attaching one subscriber per MNO through the shared RU...\n");
  if (!d.attach_all(800)) std::printf("warning: attach incomplete\n");
  d.measure(400);

  std::printf("\n%-22s %10s %10s %8s\n", "subscriber", "DL Mbps", "UL Mbps",
              "PCI");
  std::printf("%-22s %10.1f %10.1f %8d\n", "MNO A", d.dl_mbps(sub_a),
              d.ul_mbps(sub_a), int(d.air.serving_cell(sub_a) >= 0
                                        ? d.air.cell(d.air.serving_cell(sub_a)).pci
                                        : 0));
  std::printf("%-22s %10.1f %10.1f %8d\n", "MNO B", d.dl_mbps(sub_b),
              d.ul_mbps(sub_b), int(d.air.serving_cell(sub_b) >= 0
                                        ? d.air.cell(d.air.serving_cell(sub_b)).pci
                                        : 0));

  // Orchestration-style introspection over the management interface.
  MgmtEndpoint mgmt(share);
  std::printf("\nmgmt 'tenants':\n%s", mgmt.handle("tenants").c_str());
  std::printf("mgmt 'counter rushare_dl_muxed': %s\n",
              mgmt.handle("counter rushare_dl_muxed").c_str());
  std::printf("mgmt 'counter rushare_prach_demuxed': %s\n",
              mgmt.handle("counter rushare_prach_demuxed").c_str());
  return 0;
}
